//! AST of the SQL-like query language (§2).
//!
//! ```text
//! query ::= select item, … from A1 in C1, …, An in Cn where condition
//! item  ::= f(v,…,v) | r_att(v) | w_att(v,v) | nested-select | v
//! v     ::= constant | Ai
//! cond  ::= bool-term (and|or bool-term)*
//! bool-term ::= f(v,…) OP v | f(v,…) OP f(v,…)
//! ```
//!
//! The paper restricts the arguments of invocations inside queries to
//! *atoms* — constants or from-clause variables — which is what makes the
//! static analysis' treatment of "directly invoked" functions clean: every
//! value a user feeds in arrives through an atom. We keep that restriction.
//!
//! Set-valued invocations (including reads of set-valued attributes) may be
//! used in place of a class name in the from clause, as in the paper's
//! `select … from q in child(p)` example.

use crate::ast::Literal;
use oodb_model::{ClassName, FnRef, VarName};
use std::fmt;

/// An atomic query argument: a constant or a from-clause variable.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Atom {
    /// Literal constant.
    Lit(Literal),
    /// From-clause variable.
    Var(VarName),
}

impl Atom {
    /// Variable shorthand.
    pub fn var(name: impl Into<VarName>) -> Atom {
        Atom::Var(name.into())
    }

    /// Integer shorthand.
    pub fn int(i: i64) -> Atom {
        Atom::Lit(Literal::Int(i))
    }

    /// String shorthand.
    pub fn str(s: impl Into<String>) -> Atom {
        Atom::Lit(Literal::Str(s.into()))
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Lit(l) => write!(f, "{l}"),
            Atom::Var(v) => write!(f, "{v}"),
        }
    }
}

/// Invocation of an access or special function with atomic arguments.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Invocation {
    /// What is invoked.
    pub target: FnRef,
    /// Atomic arguments.
    pub args: Vec<Atom>,
}

impl Invocation {
    /// Construct an invocation.
    pub fn new(target: FnRef, args: Vec<Atom>) -> Invocation {
        Invocation { target, args }
    }
}

impl fmt::Display for Invocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.target {
            FnRef::New(c) => write!(f, "new {c}")?,
            other => write!(f, "{other}")?,
        }
        write!(f, "(")?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// One item of a select clause.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum SelectItem {
    /// A function invocation (`checkBudget(b)`, `r_name(p)`, …).
    Invoke(Invocation),
    /// A nested select (the language's queries nest, §2).
    Nested(Box<Query>),
    /// A bare atom — e.g. `select p from p in Person`, whose object results
    /// print as `(an object)`.
    Atom(Atom),
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Invoke(i) => write!(f, "{i}"),
            SelectItem::Nested(q) => write!(f, "({q})"),
            SelectItem::Atom(a) => write!(f, "{a}"),
        }
    }
}

/// A from-clause source.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum FromSource {
    /// The extension of a class.
    Class(ClassName),
    /// A set-valued invocation over outer from-clause variables.
    SetExpr(Invocation),
}

impl fmt::Display for FromSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FromSource::Class(c) => write!(f, "{c}"),
            FromSource::SetExpr(i) => write!(f, "{i}"),
        }
    }
}

/// Comparison operators allowed in where clauses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Surface token.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
            CmpOp::Le => "<=",
            CmpOp::Lt => "<",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// The right-hand side of a boolean term.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CmpRhs {
    /// An atomic value.
    Atom(Atom),
    /// Another invocation.
    Invoke(Invocation),
}

impl fmt::Display for CmpRhs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmpRhs::Atom(a) => write!(f, "{a}"),
            CmpRhs::Invoke(i) => write!(f, "{i}"),
        }
    }
}

/// A where-clause condition.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Conjunction.
    And(Box<Cond>, Box<Cond>),
    /// Disjunction.
    Or(Box<Cond>, Box<Cond>),
    /// `f(v,…) OP v` or `f(v,…) OP f(v,…)`.
    Cmp {
        /// Left invocation.
        lhs: Invocation,
        /// Comparison operator.
        op: CmpOp,
        /// Right operand.
        rhs: CmpRhs,
    },
    /// Constant `true` — the paper notes a user "can invoke `profile` for
    /// all Person objects simply by using true in where clause".
    True,
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::And(a, b) => write!(f, "({a} and {b})"),
            Cond::Or(a, b) => write!(f, "({a} or {b})"),
            Cond::Cmp { lhs, op, rhs } => write!(f, "{lhs} {op} {rhs}"),
            Cond::True => write!(f, "true"),
        }
    }
}

/// A select-from-where query.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Query {
    /// Select items, evaluated left to right (§2: "Items in a select clause
    /// are evaluated in order from left to right" — this ordering is what
    /// gives the paper's attack query its power: interleaved writes and
    /// reads).
    pub items: Vec<SelectItem>,
    /// From bindings, each scoping over the later ones and the items.
    pub from: Vec<(VarName, FromSource)>,
    /// Optional where clause.
    pub filter: Option<Cond>,
}

impl Query {
    /// All invocations syntactically present in this query, including the
    /// where clause and nested queries. Used for capability enforcement.
    pub fn invocations(&self) -> Vec<&Invocation> {
        let mut out = Vec::new();
        self.collect_invocations(&mut out);
        out
    }

    fn collect_invocations<'a>(&'a self, out: &mut Vec<&'a Invocation>) {
        for (_, src) in &self.from {
            if let FromSource::SetExpr(inv) = src {
                out.push(inv);
            }
        }
        for item in &self.items {
            match item {
                SelectItem::Invoke(inv) => out.push(inv),
                SelectItem::Nested(q) => q.collect_invocations(out),
                SelectItem::Atom(_) => {}
            }
        }
        if let Some(cond) = &self.filter {
            Self::collect_cond(cond, out);
        }
    }

    fn collect_cond<'a>(cond: &'a Cond, out: &mut Vec<&'a Invocation>) {
        match cond {
            Cond::And(a, b) | Cond::Or(a, b) => {
                Self::collect_cond(a, out);
                Self::collect_cond(b, out);
            }
            Cond::Cmp { lhs, rhs, .. } => {
                out.push(lhs);
                if let CmpRhs::Invoke(i) = rhs {
                    out.push(i);
                }
            }
            Cond::True => {}
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "select ")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, " from ")?;
        for (i, (v, src)) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} in {src}")?;
        }
        if let Some(cond) = &self.filter {
            write!(f, " where {cond}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Query {
        Query {
            items: vec![
                SelectItem::Invoke(Invocation::new(FnRef::read("name"), vec![Atom::var("p")])),
                SelectItem::Invoke(Invocation::new(
                    FnRef::access("profile"),
                    vec![Atom::var("p")],
                )),
            ],
            from: vec![(
                VarName::new("p"),
                FromSource::Class(ClassName::new("Person")),
            )],
            filter: Some(Cond::Cmp {
                lhs: Invocation::new(FnRef::read("age"), vec![Atom::var("p")]),
                op: CmpOp::Gt,
                rhs: CmpRhs::Atom(Atom::int(20)),
            }),
        }
    }

    #[test]
    fn display_matches_paper_shape() {
        assert_eq!(
            sample().to_string(),
            "select r_name(p), profile(p) from p in Person where r_age(p) > 20"
        );
    }

    #[test]
    fn invocations_cover_everything() {
        let q = sample();
        let invs = q.invocations();
        assert_eq!(invs.len(), 3);
        assert_eq!(invs[0].target, FnRef::read("name"));
        assert_eq!(invs[2].target, FnRef::read("age"));
    }

    #[test]
    fn nested_query_invocations() {
        let inner = Query {
            items: vec![SelectItem::Invoke(Invocation::new(
                FnRef::read("name"),
                vec![Atom::var("q")],
            ))],
            from: vec![(
                VarName::new("q"),
                FromSource::SetExpr(Invocation::new(FnRef::read("child"), vec![Atom::var("p")])),
            )],
            filter: None,
        };
        let outer = Query {
            items: vec![SelectItem::Nested(Box::new(inner))],
            from: vec![(
                VarName::new("p"),
                FromSource::Class(ClassName::new("Person")),
            )],
            filter: None,
        };
        assert_eq!(outer.invocations().len(), 2);
        assert_eq!(
            outer.to_string(),
            "select (select r_name(q) from q in r_child(p)) from p in Person"
        );
    }

    #[test]
    fn cond_display() {
        let c = Cond::And(
            Box::new(Cond::True),
            Box::new(Cond::Cmp {
                lhs: Invocation::new(FnRef::access("f"), vec![]),
                op: CmpOp::Eq,
                rhs: CmpRhs::Invoke(Invocation::new(FnRef::access("g"), vec![])),
            }),
        );
        assert_eq!(c.to_string(), "(true and f() == g())");
    }
}
