//! AST of the function definition language and schema containers.

use oodb_model::{
    AttrName, CapabilityList, ClassName, ClassTable, FnName, Type, UserName, Value, VarName,
};
use std::collections::BTreeMap;
use std::fmt;

/// A literal constant in program code.
///
/// These are the `c` productions of the §2 grammar. Object identifiers are
/// deliberately *not* literals: the paper's non-printable-OID regime (§3.2)
/// means programs cannot mention specific objects.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Literal {
    /// Integer constant.
    Int(i64),
    /// Boolean constant.
    Bool(bool),
    /// String constant.
    Str(String),
    /// The `null` constant.
    Null,
}

impl Literal {
    /// The literal's type.
    pub fn ty(&self) -> Type {
        match self {
            Literal::Int(_) => Type::INT,
            Literal::Bool(_) => Type::BOOL,
            Literal::Str(_) => Type::STR,
            Literal::Null => Type::Null,
        }
    }

    /// Convert to a runtime value.
    pub fn to_value(&self) -> Value {
        match self {
            Literal::Int(i) => Value::Int(*i),
            Literal::Bool(b) => Value::Bool(*b),
            Literal::Str(s) => Value::Str(s.clone()),
            Literal::Null => Value::Null,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Bool(b) => write!(f, "{b}"),
            Literal::Str(s) => write!(f, "{s:?}"),
            Literal::Null => write!(f, "null"),
        }
    }
}

/// The built-in *basic functions* `fb` on basic types.
///
/// The paper treats these as primitive operations whose algebraic properties
/// drive the metarules of §4.1 (e.g. the `>=` and `*` rule sets listed
/// there). The set below covers every operator the paper mentions (integer
/// comparison, multiplication, addition, division, remainder) plus the
/// boolean connectives used by query conditions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BasicOp {
    /// Integer addition `+`.
    Add,
    /// Integer subtraction `-`.
    Sub,
    /// Integer multiplication `*`.
    Mul,
    /// Integer division `/` (truncating; division by zero is a runtime error).
    Div,
    /// Integer remainder `%`.
    Mod,
    /// Integer negation (unary `-`).
    Neg,
    /// `>=` on integers.
    Ge,
    /// `>` on integers.
    Gt,
    /// `<=` on integers.
    Le,
    /// `<` on integers.
    Lt,
    /// Equality on any basic type.
    EqOp,
    /// Disequality on any basic type.
    NeOp,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// Boolean negation.
    Not,
    /// String concatenation `++`.
    Concat,
}

impl BasicOp {
    /// Number of arguments.
    pub fn arity(self) -> usize {
        match self {
            BasicOp::Neg | BasicOp::Not => 1,
            _ => 2,
        }
    }

    /// Surface-syntax token.
    pub fn symbol(self) -> &'static str {
        match self {
            BasicOp::Add => "+",
            BasicOp::Sub => "-",
            BasicOp::Mul => "*",
            BasicOp::Div => "/",
            BasicOp::Mod => "%",
            BasicOp::Neg => "-",
            BasicOp::Ge => ">=",
            BasicOp::Gt => ">",
            BasicOp::Le => "<=",
            BasicOp::Lt => "<",
            BasicOp::EqOp => "==",
            BasicOp::NeOp => "!=",
            BasicOp::And => "and",
            BasicOp::Or => "or",
            BasicOp::Not => "not",
            BasicOp::Concat => "++",
        }
    }

    /// Is this one of the four order comparisons?
    pub fn is_order_cmp(self) -> bool {
        matches!(self, BasicOp::Ge | BasicOp::Gt | BasicOp::Le | BasicOp::Lt)
    }

    /// All operators (for exhaustive rule-coverage tests).
    pub const ALL: [BasicOp; 16] = [
        BasicOp::Add,
        BasicOp::Sub,
        BasicOp::Mul,
        BasicOp::Div,
        BasicOp::Mod,
        BasicOp::Neg,
        BasicOp::Ge,
        BasicOp::Gt,
        BasicOp::Le,
        BasicOp::Lt,
        BasicOp::EqOp,
        BasicOp::NeOp,
        BasicOp::And,
        BasicOp::Or,
        BasicOp::Not,
        BasicOp::Concat,
    ];
}

impl fmt::Display for BasicOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// An expression of the function definition language.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A literal constant `c`.
    Const(Literal),
    /// An occurrence of an argument variable or `let`-bound variable.
    Var(VarName),
    /// Invocation of a basic function `fb(e,…)`.
    Basic(BasicOp, Vec<Expr>),
    /// Invocation of another access function `fa(e,…)`.
    Call(FnName, Vec<Expr>),
    /// `r_att(e)`: read the attribute of the receiver.
    Read(AttrName, Box<Expr>),
    /// `w_att(e1, e2)`: write `e2` into the receiver's attribute; evaluates
    /// to `null`.
    Write(AttrName, Box<Expr>, Box<Expr>),
    /// `new C(e,…)`: create an instance with positional attribute values.
    New(ClassName, Vec<Expr>),
    /// `let x1 = e1, … in body end` — local variables. The unfolding in
    /// `secflow` also re-uses this form as the paper's `let(f) …` marker.
    Let {
        /// The bindings, evaluated left to right.
        bindings: Vec<(VarName, Expr)>,
        /// The body, evaluated with all bindings in scope.
        body: Box<Expr>,
    },
}

impl Expr {
    /// Integer literal shorthand.
    pub fn int(i: i64) -> Expr {
        Expr::Const(Literal::Int(i))
    }

    /// Variable shorthand.
    pub fn var(name: impl Into<VarName>) -> Expr {
        Expr::Var(name.into())
    }

    /// Binary basic-function shorthand.
    pub fn bin(op: BasicOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Basic(op, vec![lhs, rhs])
    }

    /// Attribute-read shorthand.
    pub fn read(attr: impl Into<AttrName>, recv: Expr) -> Expr {
        Expr::Read(attr.into(), Box::new(recv))
    }

    /// Attribute-write shorthand.
    pub fn write(attr: impl Into<AttrName>, recv: Expr, val: Expr) -> Expr {
        Expr::Write(attr.into(), Box::new(recv), Box::new(val))
    }

    /// Access-function call shorthand.
    pub fn call(name: impl Into<FnName>, args: Vec<Expr>) -> Expr {
        Expr::Call(name.into(), args)
    }

    /// Number of AST nodes (used by the workload generators and complexity
    /// guards).
    pub fn size(&self) -> usize {
        1 + match self {
            Expr::Const(_) | Expr::Var(_) => 0,
            Expr::Basic(_, args) | Expr::Call(_, args) | Expr::New(_, args) => {
                args.iter().map(Expr::size).sum()
            }
            Expr::Read(_, e) => e.size(),
            Expr::Write(_, a, b) => a.size() + b.size(),
            Expr::Let { bindings, body } => {
                bindings.iter().map(|(_, e)| e.size()).sum::<usize>() + body.size()
            }
        }
    }

    /// Names of all access functions invoked (transitively syntactic, not
    /// through the schema) by this expression.
    pub fn called_functions(&self) -> Vec<FnName> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Call(f, _) = e {
                out.push(f.clone());
            }
        });
        out
    }

    /// Pre-order walk over all subexpressions.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Const(_) | Expr::Var(_) => {}
            Expr::Basic(_, args) | Expr::Call(_, args) | Expr::New(_, args) => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Read(_, e) => e.walk(f),
            Expr::Write(_, a, b) => {
                a.walk(f);
                b.walk(f);
            }
            Expr::Let { bindings, body } => {
                for (_, e) in bindings {
                    e.walk(f);
                }
                body.walk(f);
            }
        }
    }
}

/// Definition of one access function: signature `f(a1:t1, …):t` plus body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessFnDef {
    /// Function name.
    pub name: FnName,
    /// Parameters in order.
    pub params: Vec<(VarName, Type)>,
    /// Declared return type.
    pub ret: Type,
    /// The body expression.
    pub body: Expr,
}

impl AccessFnDef {
    /// Parameter type by position.
    pub fn param_type(&self, i: usize) -> Option<&Type> {
        self.params.get(i).map(|(_, t)| t)
    }

    /// Arity.
    pub fn arity(&self) -> usize {
        self.params.len()
    }
}

/// A complete schema: class definitions, access-function definitions, and
/// the user catalog with capability lists (§2's `scm` + the user part of
/// `db`). Security requirements parsed from the same source are carried
/// alongside for convenience.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Schema {
    /// Class definitions.
    pub classes: ClassTable,
    /// Access functions by name.
    pub functions: BTreeMap<FnName, AccessFnDef>,
    /// Users and their capability lists.
    pub users: BTreeMap<UserName, CapabilityList>,
    /// Security requirements declared in the schema source.
    pub requirements: Vec<crate::requirement::Requirement>,
}

impl Schema {
    /// Empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Look up an access function.
    pub fn function(&self, name: &FnName) -> Option<&AccessFnDef> {
        self.functions.get(name)
    }

    /// Look up an access function by bare string.
    pub fn function_str(&self, name: &str) -> Option<&AccessFnDef> {
        self.functions.get(name)
    }

    /// Look up a user's capability list.
    pub fn user(&self, name: &UserName) -> Option<&CapabilityList> {
        self.users.get(name)
    }

    /// Look up a user's capability list by bare string.
    pub fn user_str(&self, name: &str) -> Option<&CapabilityList> {
        self.users.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_types_and_values() {
        assert_eq!(Literal::Int(3).ty(), Type::INT);
        assert_eq!(Literal::Bool(true).to_value(), Value::Bool(true));
        assert_eq!(Literal::Null.ty(), Type::Null);
        assert_eq!(Literal::Str("x".into()).to_value(), Value::str("x"));
    }

    #[test]
    fn op_arity_and_symbols() {
        assert_eq!(BasicOp::Not.arity(), 1);
        assert_eq!(BasicOp::Neg.arity(), 1);
        assert_eq!(BasicOp::Mul.arity(), 2);
        assert_eq!(BasicOp::Ge.symbol(), ">=");
        assert!(BasicOp::Lt.is_order_cmp());
        assert!(!BasicOp::EqOp.is_order_cmp());
        assert_eq!(BasicOp::ALL.len(), 16);
    }

    #[test]
    fn expr_size_counts_nodes() {
        // >=(r_budget(broker), *(10, r_salary(broker))) — the checkBudget
        // body — has 7 nodes, matching the paper's numbering 1..7.
        let body = Expr::bin(
            BasicOp::Ge,
            Expr::read("budget", Expr::var("broker")),
            Expr::bin(
                BasicOp::Mul,
                Expr::int(10),
                Expr::read("salary", Expr::var("broker")),
            ),
        );
        assert_eq!(body.size(), 7);
    }

    #[test]
    fn called_functions_collects() {
        let e = Expr::call(
            "f",
            vec![
                Expr::call("g", vec![]),
                Expr::bin(BasicOp::Add, Expr::call("g", vec![]), Expr::int(1)),
            ],
        );
        let names: Vec<String> = e
            .called_functions()
            .iter()
            .map(|f| f.as_str().to_owned())
            .collect();
        assert_eq!(names, ["f", "g", "g"]);
    }

    #[test]
    fn let_size() {
        let e = Expr::Let {
            bindings: vec![(VarName::new("x"), Expr::int(1))],
            body: Box::new(Expr::var("x")),
        };
        assert_eq!(e.size(), 3);
    }
}
