//! # oodb-lang
//!
//! The three surface languages of *Tajima, SIGMOD 1996* (§2–§3):
//!
//! 1. the **function definition language** in which access-function bodies
//!    are written,
//!
//!    ```text
//!    e ::= c | a | fb(e,…,e) | fa(e,…,e) | r_att(e) | w_att(e,e)
//!        | new C(e,…,e) | let x = e, … in e end
//!    ```
//!
//! 2. the **SQL-like query language** users issue
//!    (`select … from x in C, … where …`), and
//! 3. the **security-requirement language**
//!    `(u, f(x1 : c…:c, …, xn : c…:c) : c…:c)` of §3.1.
//!
//! The crate provides the ASTs ([`ast`], [`query`], [`requirement`]), a
//! hand-written lexer/parser for a concrete syntax ([`parse`]), a
//! precedence-aware pretty-printer ([`pretty`]), and a type checker
//! ([`typeck`]) that also enforces the paper's recursion-freedom restriction
//! (§2: *"We do not consider recursive functions"*) — the static analysis in
//! `secflow` relies on it for its unfolding to terminate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod parse;
pub mod pretty;
pub mod query;
pub mod requirement;
pub mod typeck;

pub use ast::{AccessFnDef, BasicOp, Expr, Literal, Schema};
pub use parse::{parse_expr, parse_query, parse_requirement, parse_schema, ParseError};
pub use query::{Atom, CmpOp, Cond, FromSource, Invocation, Query, SelectItem};
pub use requirement::{Cap, Requirement};
pub use typeck::{check_schema, TypeError};
