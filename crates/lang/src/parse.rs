//! Recursive-descent parser for the concrete syntax.
//!
//! Top-level forms of a schema source:
//!
//! ```text
//! class Broker { name: string, salary: int, budget: int, profit: int }
//!
//! fn checkBudget(broker: Broker): bool {
//!   r_budget(broker) >= 10 * r_salary(broker)
//! }
//!
//! user clerk { checkBudget, w_budget }
//!
//! require (clerk, r_salary(x) : ti)
//! ```
//!
//! Queries are parsed separately by [`parse_query`]:
//!
//! ```text
//! select r_name(p), profile(p) from p in Person where r_age(p) > 20
//! ```
//!
//! Identifiers starting with `r_` / `w_` are reserved for the special
//! read/write functions in call position; `new C(…)` is the constructor.

use crate::ast::{AccessFnDef, BasicOp, Expr, Literal, Schema};
use crate::lexer::{lex, LexError, Spanned, Token};
use crate::query::{Atom, CmpOp, CmpRhs, Cond, FromSource, Invocation, Query, SelectItem};
use crate::requirement::{Cap, Requirement};
use oodb_model::{CapabilityList, ClassDef, FnRef, Type, VarName};
use std::fmt;

/// Parse error with a 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line, 0 when at end of input.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "parse error at end of input: {}", self.message)
        } else {
            write!(f, "parse error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            message: e.message,
            line: e.line,
        }
    }
}

/// Keywords that cannot be used as identifiers.
pub const KEYWORDS: &[&str] = &[
    "class", "fn", "user", "require", "let", "in", "end", "select", "from", "where", "new", "null",
    "true", "false", "and", "or", "not", "int", "bool", "string",
];

/// Maximum nesting depth for expressions, types and conditions. The parser
/// is recursive-descent; without a bound, adversarial input (thousands of
/// nested parentheses) would overflow the stack instead of erroring.
const MAX_DEPTH: u32 = 200;

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    depth: u32,
}

impl Parser {
    fn new(src: &str) -> Result<Parser, ParseError> {
        Ok(Parser {
            tokens: lex(src)?,
            pos: 0,
            depth: 0,
        })
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return self.err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|s| &s.token)
    }

    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos)
            .map(|s| s.line)
            .unwrap_or(self.tokens.last().map(|s| s.line).unwrap_or(0))
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            line: self.line(),
        })
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => {
                let t = t.clone();
                self.err(format!("expected `{want}`, found `{t}`"))
            }
            None => self.err(format!("expected `{want}`, found end of input")),
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t.is_kw(kw) => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => {
                let t = t.clone();
                self.err(format!("expected `{kw}`, found `{t}`"))
            }
            None => self.err(format!("expected `{kw}`, found end of input")),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(t) if t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat(&mut self, want: &Token) -> bool {
        if self.peek() == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) if !KEYWORDS.contains(&s.as_str()) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.err(format!("keyword `{s}` cannot be used as {what}"))
            }
            Some(t) => {
                let t = t.clone();
                self.err(format!("expected {what}, found `{t}`"))
            }
            None => self.err(format!("expected {what}, found end of input")),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    // ------------------------------------------------------------ types

    fn ty(&mut self) -> Result<Type, ParseError> {
        self.enter()?;
        let r = self.ty_inner();
        self.leave();
        r
    }

    fn ty_inner(&mut self) -> Result<Type, ParseError> {
        if self.eat(&Token::LBrace) {
            let inner = self.ty()?;
            self.expect(&Token::RBrace)?;
            return Ok(Type::set(inner));
        }
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(match s.as_str() {
                    "int" => Type::INT,
                    "bool" => Type::BOOL,
                    "string" => Type::STR,
                    "null" => Type::Null,
                    other if KEYWORDS.contains(&other) => {
                        return self.err(format!("keyword `{other}` is not a type"))
                    }
                    _ => Type::class(s),
                })
            }
            _ => self.err("expected a type"),
        }
    }

    // ------------------------------------------------------ expressions

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let r = self.or_expr();
        self.leave();
        r
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("or") {
            let rhs = self.and_expr()?;
            lhs = Expr::bin(BasicOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("and") {
            let rhs = self.not_expr()?;
            lhs = Expr::bin(BasicOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw("not") {
            let inner = self.not_expr()?;
            Ok(Expr::Basic(BasicOp::Not, vec![inner]))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Ge) => Some(BasicOp::Ge),
            Some(Token::Gt) => Some(BasicOp::Gt),
            Some(Token::Le) => Some(BasicOp::Le),
            Some(Token::Lt) => Some(BasicOp::Lt),
            Some(Token::EqEq) => Some(BasicOp::EqOp),
            Some(Token::NotEq) => Some(BasicOp::NeOp),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.add_expr()?;
            Ok(Expr::bin(op, lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BasicOp::Add,
                Some(Token::Minus) => BasicOp::Sub,
                Some(Token::PlusPlus) => BasicOp::Concat,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BasicOp::Mul,
                Some(Token::Slash) => BasicOp::Div,
                Some(Token::Percent) => BasicOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Token::Minus) {
            let inner = self.unary_expr()?;
            // Fold `-` on an integer literal into a negative constant, so
            // pretty-printed negative literals round-trip structurally.
            if let Expr::Const(Literal::Int(n)) = inner {
                return Ok(Expr::Const(Literal::Int(-n)));
            }
            Ok(Expr::Basic(BasicOp::Neg, vec![inner]))
        } else {
            self.primary_expr()
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Const(Literal::Int(i)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Const(Literal::Str(s)))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(s)) => match s.as_str() {
                "true" => {
                    self.pos += 1;
                    Ok(Expr::Const(Literal::Bool(true)))
                }
                "false" => {
                    self.pos += 1;
                    Ok(Expr::Const(Literal::Bool(false)))
                }
                "null" => {
                    self.pos += 1;
                    Ok(Expr::Const(Literal::Null))
                }
                "let" => self.let_expr(),
                "new" => {
                    self.pos += 1;
                    let class = self.ident("a class name")?;
                    self.expect(&Token::LParen)?;
                    let args = self.expr_args()?;
                    Ok(Expr::New(class.into(), args))
                }
                _ if KEYWORDS.contains(&s.as_str()) => {
                    self.err(format!("unexpected keyword `{s}` in expression"))
                }
                _ => {
                    self.pos += 1;
                    if self.peek() == Some(&Token::LParen) {
                        self.pos += 1;
                        let args = self.expr_args()?;
                        self.call_from_name(&s, args)
                    } else {
                        Ok(Expr::var(s))
                    }
                }
            },
            Some(t) => self.err(format!("unexpected `{t}` in expression")),
            None => self.err("unexpected end of input in expression"),
        }
    }

    /// Resolve a call by name: `r_att` / `w_att` are special, anything else
    /// is an access-function invocation.
    fn call_from_name(&mut self, name: &str, args: Vec<Expr>) -> Result<Expr, ParseError> {
        if let Some(attr) = name.strip_prefix("r_") {
            if attr.is_empty() {
                return self.err("`r_` must be followed by an attribute name");
            }
            if args.len() != 1 {
                return self.err(format!(
                    "`{name}` takes exactly 1 argument, got {}",
                    args.len()
                ));
            }
            let mut it = args.into_iter();
            return Ok(Expr::read(attr, it.next().expect("checked len")));
        }
        if let Some(attr) = name.strip_prefix("w_") {
            if attr.is_empty() {
                return self.err("`w_` must be followed by an attribute name");
            }
            if args.len() != 2 {
                return self.err(format!(
                    "`{name}` takes exactly 2 arguments, got {}",
                    args.len()
                ));
            }
            let mut it = args.into_iter();
            let recv = it.next().expect("checked len");
            let val = it.next().expect("checked len");
            return Ok(Expr::write(attr, recv, val));
        }
        Ok(Expr::call(name, args))
    }

    fn expr_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        let mut args = Vec::new();
        if self.eat(&Token::RParen) {
            return Ok(args);
        }
        loop {
            args.push(self.expr()?);
            if self.eat(&Token::Comma) {
                continue;
            }
            self.expect(&Token::RParen)?;
            return Ok(args);
        }
    }

    fn let_expr(&mut self) -> Result<Expr, ParseError> {
        self.expect_kw("let")?;
        let mut bindings = Vec::new();
        loop {
            let name = self.ident("a variable name")?;
            self.expect(&Token::Assign)?;
            let value = self.expr()?;
            bindings.push((VarName::new(name), value));
            if self.eat(&Token::Comma) {
                continue;
            }
            break;
        }
        self.expect_kw("in")?;
        let body = self.expr()?;
        self.expect_kw("end")?;
        Ok(Expr::Let {
            bindings,
            body: Box::new(body),
        })
    }

    // ------------------------------------------------------------ schema

    fn schema(&mut self) -> Result<Schema, ParseError> {
        let mut schema = Schema::new();
        while let Some(t) = self.peek() {
            if t.is_kw("class") {
                let def = self.class_def()?;
                schema.classes.insert(def).map_err(|e| ParseError {
                    message: e.to_string(),
                    line: self.line(),
                })?;
            } else if t.is_kw("fn") {
                let def = self.fn_def()?;
                if schema.functions.contains_key(&def.name) {
                    return self.err(format!("function `{}` defined more than once", def.name));
                }
                schema.functions.insert(def.name.clone(), def);
            } else if t.is_kw("user") {
                let (name, caps) = self.user_def()?;
                if schema.users.contains_key(name.as_str()) {
                    return self.err(format!("user `{name}` defined more than once"));
                }
                schema.users.insert(name.into(), caps);
            } else if t.is_kw("require") {
                let req = self.require_def()?;
                schema.requirements.push(req);
            } else {
                let t = t.clone();
                return self.err(format!(
                    "expected `class`, `fn`, `user` or `require`, found `{t}`"
                ));
            }
        }
        Ok(schema)
    }

    fn class_def(&mut self) -> Result<ClassDef, ParseError> {
        self.expect_kw("class")?;
        let name = self.ident("a class name")?;
        self.expect(&Token::LBrace)?;
        let mut attrs = Vec::new();
        if !self.eat(&Token::RBrace) {
            loop {
                let attr = self.ident("an attribute name")?;
                self.expect(&Token::Colon)?;
                let ty = self.ty()?;
                attrs.push((attr.into(), ty));
                if self.eat(&Token::Comma) {
                    continue;
                }
                self.expect(&Token::RBrace)?;
                break;
            }
        }
        ClassDef::new(name, attrs).map_err(|e| ParseError {
            message: e.to_string(),
            line: self.line(),
        })
    }

    fn fn_def(&mut self) -> Result<AccessFnDef, ParseError> {
        self.expect_kw("fn")?;
        let name = self.ident("a function name")?;
        if name.starts_with("r_") || name.starts_with("w_") {
            return self.err(format!(
                "function name `{name}` collides with the special-function namespace (`r_…`/`w_…`)"
            ));
        }
        self.expect(&Token::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&Token::RParen) {
            loop {
                let p = self.ident("a parameter name")?;
                self.expect(&Token::Colon)?;
                let ty = self.ty()?;
                params.push((VarName::new(p), ty));
                if self.eat(&Token::Comma) {
                    continue;
                }
                self.expect(&Token::RParen)?;
                break;
            }
        }
        self.expect(&Token::Colon)?;
        let ret = self.ty()?;
        self.expect(&Token::LBrace)?;
        let body = self.expr()?;
        self.expect(&Token::RBrace)?;
        Ok(AccessFnDef {
            name: name.into(),
            params,
            ret,
            body,
        })
    }

    fn fn_ref(&mut self) -> Result<FnRef, ParseError> {
        if self.eat_kw("new") {
            let class = self.ident("a class name")?;
            return Ok(FnRef::new_class(class));
        }
        let name = self.ident("a function reference")?;
        if let Some(attr) = name.strip_prefix("r_") {
            if !attr.is_empty() {
                return Ok(FnRef::read(attr));
            }
        }
        if let Some(attr) = name.strip_prefix("w_") {
            if !attr.is_empty() {
                return Ok(FnRef::write(attr));
            }
        }
        Ok(FnRef::access(name))
    }

    fn user_def(&mut self) -> Result<(String, CapabilityList), ParseError> {
        self.expect_kw("user")?;
        let name = self.ident("a user name")?;
        self.expect(&Token::LBrace)?;
        let mut caps = CapabilityList::new();
        if !self.eat(&Token::RBrace) {
            loop {
                let f = self.fn_ref()?;
                caps.grant(f);
                if self.eat(&Token::Comma) {
                    continue;
                }
                self.expect(&Token::RBrace)?;
                break;
            }
        }
        Ok((name, caps))
    }

    fn cap(&mut self) -> Result<Cap, ParseError> {
        let kw = self.ident("a capability (ti, pi, ta, pa)")?;
        match kw.as_str() {
            "ti" => Ok(Cap::Ti),
            "pi" => Ok(Cap::Pi),
            "ta" => Ok(Cap::Ta),
            "pa" => Ok(Cap::Pa),
            other => self.err(format!(
                "unknown capability `{other}` (expected ti, pi, ta, pa)"
            )),
        }
    }

    fn require_def(&mut self) -> Result<Requirement, ParseError> {
        self.expect_kw("require")?;
        self.expect(&Token::LParen)?;
        let user = self.ident("a user name")?;
        self.expect(&Token::Comma)?;
        let target = self.fn_ref()?;
        self.expect(&Token::LParen)?;
        let mut arg_names = Vec::new();
        let mut arg_caps = Vec::new();
        if !self.eat(&Token::RParen) {
            loop {
                let name = self.ident("an argument name")?;
                let mut caps = Vec::new();
                while self.eat(&Token::Colon) {
                    caps.push(self.cap()?);
                }
                arg_names.push(VarName::new(name));
                arg_caps.push(caps);
                if self.eat(&Token::Comma) {
                    continue;
                }
                self.expect(&Token::RParen)?;
                break;
            }
        }
        let mut ret_caps = Vec::new();
        while self.eat(&Token::Colon) {
            ret_caps.push(self.cap()?);
        }
        self.expect(&Token::RParen)?;
        Ok(Requirement {
            user: user.into(),
            target,
            arg_names,
            arg_caps,
            ret_caps,
        })
    }

    // ------------------------------------------------------------ query

    fn atom(&mut self) -> Result<Atom, ParseError> {
        match self.peek().cloned() {
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(Atom::Lit(Literal::Int(i)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Atom::Lit(Literal::Str(s)))
            }
            Some(Token::Minus) => {
                self.pos += 1;
                match self.bump() {
                    Some(Token::Int(i)) => Ok(Atom::Lit(Literal::Int(-i))),
                    _ => self.err("expected integer after `-`"),
                }
            }
            Some(Token::Ident(s)) => match s.as_str() {
                "true" => {
                    self.pos += 1;
                    Ok(Atom::Lit(Literal::Bool(true)))
                }
                "false" => {
                    self.pos += 1;
                    Ok(Atom::Lit(Literal::Bool(false)))
                }
                "null" => {
                    self.pos += 1;
                    Ok(Atom::Lit(Literal::Null))
                }
                _ if KEYWORDS.contains(&s.as_str()) => {
                    self.err(format!("unexpected keyword `{s}` in query atom"))
                }
                _ => {
                    self.pos += 1;
                    Ok(Atom::var(s))
                }
            },
            Some(t) => self.err(format!("unexpected `{t}` in query atom")),
            None => self.err("unexpected end of input in query atom"),
        }
    }

    fn invocation(&mut self) -> Result<Invocation, ParseError> {
        let target = self.fn_ref()?;
        self.expect(&Token::LParen)?;
        let mut args = Vec::new();
        if !self.eat(&Token::RParen) {
            loop {
                args.push(self.atom()?);
                if self.eat(&Token::Comma) {
                    continue;
                }
                self.expect(&Token::RParen)?;
                break;
            }
        }
        Ok(Invocation::new(target, args))
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        match self.peek() {
            Some(Token::LParen) => {
                self.pos += 1;
                let q = self.query()?;
                self.expect(&Token::RParen)?;
                Ok(SelectItem::Nested(Box::new(q)))
            }
            Some(Token::Ident(s)) if s == "new" || (!KEYWORDS.contains(&s.as_str())) => {
                // Lookahead: IDENT "(" is an invocation, otherwise an atom.
                if s == "new" || self.peek2() == Some(&Token::LParen) {
                    Ok(SelectItem::Invoke(self.invocation()?))
                } else {
                    Ok(SelectItem::Atom(self.atom()?))
                }
            }
            _ => Ok(SelectItem::Atom(self.atom()?)),
        }
    }

    fn parse_from_binding(&mut self) -> Result<(VarName, FromSource), ParseError> {
        let var = self.ident("a from-clause variable")?;
        self.expect_kw("in")?;
        match self.peek() {
            Some(Token::Ident(s)) if s == "new" || self.peek2() == Some(&Token::LParen) => {
                let s = s.clone();
                if KEYWORDS.contains(&s.as_str()) && s != "new" {
                    return self.err(format!("unexpected keyword `{s}` in from clause"));
                }
                let inv = self.invocation()?;
                Ok((VarName::new(var), FromSource::SetExpr(inv)))
            }
            Some(Token::Ident(_)) => {
                let class = self.ident("a class name")?;
                Ok((VarName::new(var), FromSource::Class(class.into())))
            }
            _ => self.err("expected a class name or set-valued invocation in from clause"),
        }
    }

    fn cond(&mut self) -> Result<Cond, ParseError> {
        self.enter()?;
        let r = self.cond_body();
        self.leave();
        r
    }

    fn cond_body(&mut self) -> Result<Cond, ParseError> {
        let mut lhs = self.cond_and()?;
        while self.eat_kw("or") {
            let rhs = self.cond_and()?;
            lhs = Cond::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cond_and(&mut self) -> Result<Cond, ParseError> {
        let mut lhs = self.cond_atom()?;
        while self.eat_kw("and") {
            let rhs = self.cond_atom()?;
            lhs = Cond::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cond_atom(&mut self) -> Result<Cond, ParseError> {
        if self.eat(&Token::LParen) {
            let c = self.cond()?;
            self.expect(&Token::RParen)?;
            return Ok(c);
        }
        if matches!(self.peek(), Some(t) if t.is_kw("true")) {
            self.pos += 1;
            return Ok(Cond::True);
        }
        let lhs = self.invocation()?;
        let op = match self.peek() {
            Some(Token::Ge) => CmpOp::Ge,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::EqEq) => CmpOp::Eq,
            Some(Token::NotEq) => CmpOp::Ne,
            _ => return self.err("expected a comparison operator in where clause"),
        };
        self.pos += 1;
        // RHS: an invocation (IDENT "(" …) or an atom.
        let rhs = match self.peek() {
            Some(Token::Ident(s))
                if s == "new"
                    || (!KEYWORDS.contains(&s.as_str())
                        && self.peek2() == Some(&Token::LParen)) =>
            {
                CmpRhs::Invoke(self.invocation()?)
            }
            _ => CmpRhs::Atom(self.atom()?),
        };
        Ok(Cond::Cmp { lhs, op, rhs })
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        self.expect_kw("select")?;
        let mut items = vec![self.select_item()?];
        while self.eat(&Token::Comma) {
            items.push(self.select_item()?);
        }
        self.expect_kw("from")?;
        let mut from = vec![self.parse_from_binding()?];
        while self.eat(&Token::Comma) {
            from.push(self.parse_from_binding()?);
        }
        let filter = if self.eat_kw("where") {
            Some(self.cond()?)
        } else {
            None
        };
        Ok(Query {
            items,
            from,
            filter,
        })
    }
}

/// Parse a full schema source (classes, functions, users, requirements).
///
/// ```
/// let schema = oodb_lang::parse_schema(r#"
///     class Person { name: string, age: int }
///     fn isAdult(p: Person): bool { r_age(p) >= 18 }
///     user app { isAdult, r_name }
///     require (app, r_age(x) : ti)
/// "#).unwrap();
/// assert_eq!(schema.functions.len(), 1);
/// assert_eq!(schema.requirements.len(), 1);
/// oodb_lang::check_schema(&schema).unwrap();
/// ```
pub fn parse_schema(src: &str) -> Result<Schema, ParseError> {
    let mut p = Parser::new(src)?;
    let s = p.schema()?;
    if !p.at_end() {
        return p.err("trailing input after schema");
    }
    Ok(s)
}

/// Parse a single expression of the function definition language.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let mut p = Parser::new(src)?;
    let e = p.expr()?;
    if !p.at_end() {
        return p.err("trailing input after expression");
    }
    Ok(e)
}

/// Parse a query.
pub fn parse_query(src: &str) -> Result<Query, ParseError> {
    let mut p = Parser::new(src)?;
    let q = p.query()?;
    if !p.at_end() {
        return p.err("trailing input after query");
    }
    Ok(q)
}

/// Parse a single requirement, e.g. `(clerk, r_salary(x) : ti)` (the
/// leading `require` keyword is optional here).
pub fn parse_requirement(src: &str) -> Result<Requirement, ParseError> {
    let full = if src.trim_start().starts_with("require") {
        src.to_owned()
    } else {
        format!("require {src}")
    };
    let mut p = Parser::new(&full)?;
    let r = p.require_def()?;
    if !p.at_end() {
        return p.err("trailing input after requirement");
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_check_budget_body() {
        let e = parse_expr("r_budget(broker) >= 10 * r_salary(broker)").unwrap();
        assert_eq!(
            e,
            Expr::bin(
                BasicOp::Ge,
                Expr::read("budget", Expr::var("broker")),
                Expr::bin(
                    BasicOp::Mul,
                    Expr::int(10),
                    Expr::read("salary", Expr::var("broker"))
                )
            )
        );
    }

    #[test]
    fn precedence() {
        let e = parse_expr("1 + 2 * 3 - 4").unwrap();
        // (1 + (2*3)) - 4
        assert_eq!(
            e,
            Expr::bin(
                BasicOp::Sub,
                Expr::bin(
                    BasicOp::Add,
                    Expr::int(1),
                    Expr::bin(BasicOp::Mul, Expr::int(2), Expr::int(3))
                ),
                Expr::int(4)
            )
        );
        let e = parse_expr("not a and b or c").unwrap();
        // ((not a) and b) or c
        assert_eq!(
            e,
            Expr::bin(
                BasicOp::Or,
                Expr::bin(
                    BasicOp::And,
                    Expr::Basic(BasicOp::Not, vec![Expr::var("a")]),
                    Expr::var("b")
                ),
                Expr::var("c")
            )
        );
    }

    #[test]
    fn unary_minus_and_parens() {
        let e = parse_expr("-(x + 1) * 2").unwrap();
        assert_eq!(
            e,
            Expr::bin(
                BasicOp::Mul,
                Expr::Basic(
                    BasicOp::Neg,
                    vec![Expr::bin(BasicOp::Add, Expr::var("x"), Expr::int(1))]
                ),
                Expr::int(2)
            )
        );
    }

    #[test]
    fn let_and_new() {
        let e = parse_expr("let x = 1, y = new Point(2, 3) in x + r_x(y) end").unwrap();
        match e {
            Expr::Let { bindings, body } => {
                assert_eq!(bindings.len(), 2);
                assert!(matches!(bindings[1].1, Expr::New(_, _)));
                assert!(matches!(*body, Expr::Basic(BasicOp::Add, _)));
            }
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn special_fn_arity_checked_at_parse() {
        assert!(parse_expr("r_salary(a, b)").is_err());
        assert!(parse_expr("w_salary(a)").is_err());
        assert!(parse_expr("r_(a)").is_err());
    }

    #[test]
    fn parse_full_schema() {
        let src = r#"
            # The paper's running example (§1, §4.2).
            class Broker { name: string, salary: int, budget: int, profit: int }

            fn checkBudget(broker: Broker): bool {
              r_budget(broker) >= 10 * r_salary(broker)
            }

            user clerk { checkBudget, w_budget }

            require (clerk, r_salary(x) : ti)
        "#;
        let s = parse_schema(src).unwrap();
        assert_eq!(s.classes.len(), 1);
        assert_eq!(s.functions.len(), 1);
        assert_eq!(s.users.len(), 1);
        assert_eq!(s.requirements.len(), 1);
        let caps = s.user_str("clerk").unwrap();
        assert!(caps.allows(&FnRef::access("checkBudget")));
        assert!(caps.allows(&FnRef::write("budget")));
        let r = &s.requirements[0];
        assert_eq!(r.target, FnRef::read("salary"));
        assert_eq!(r.ret_caps, vec![Cap::Ti]);
    }

    #[test]
    fn requirement_with_arg_caps() {
        let r = parse_requirement("(clerk, w_salary(x, v: ta))").unwrap();
        assert_eq!(r.target, FnRef::write("salary"));
        assert_eq!(r.arg_caps, vec![vec![], vec![Cap::Ta]]);
        assert!(r.ret_caps.is_empty());

        let r = parse_requirement("require (u, f(x: ti: pa) : pi)").unwrap();
        assert_eq!(r.arg_caps, vec![vec![Cap::Ti, Cap::Pa]]);
        assert_eq!(r.ret_caps, vec![Cap::Pi]);
    }

    #[test]
    fn parse_queries() {
        let q = parse_query("select r_name(p), profile(p) from p in Person where r_age(p) > 20")
            .unwrap();
        assert_eq!(q.items.len(), 2);
        assert_eq!(q.from.len(), 1);
        assert!(q.filter.is_some());

        // The paper's nested query.
        let q = parse_query(
            "select (select r_name(q) from q in r_child(p)) from p in Person where r_name(p) == \"John\"",
        )
        .unwrap();
        assert!(matches!(q.items[0], SelectItem::Nested(_)));

        // The attack query from §3.1.
        let q = parse_query(
            "select w_budget(b, 1), checkBudget(b), w_budget(b, 2), checkBudget(b) \
             from b in Broker where r_name(b) == \"John\"",
        )
        .unwrap();
        assert_eq!(q.items.len(), 4);
    }

    #[test]
    fn query_with_true_condition_and_atom_item() {
        let q = parse_query("select p from p in Person where true").unwrap();
        assert!(matches!(q.items[0], SelectItem::Atom(Atom::Var(_))));
        assert_eq!(q.filter, Some(Cond::True));
    }

    #[test]
    fn errors_carry_lines() {
        let err = parse_schema("class C { x: int }\nfn f(: int { 1 }").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(parse_expr("1 +").is_err());
        assert!(parse_expr("1 1").is_err());
        assert!(parse_query("select from x in C").is_err());
    }

    #[test]
    fn reserved_fn_names_rejected() {
        let err = parse_schema("fn r_evil(x: int): int { x }").unwrap_err();
        assert!(err.message.contains("special-function namespace"));
    }

    #[test]
    fn duplicate_definitions_rejected() {
        assert!(parse_schema("fn f(): int { 1 } fn f(): int { 2 }").is_err());
        assert!(parse_schema("user u { } user u { }").is_err());
        assert!(parse_schema("class C { } class C { }").is_err());
    }

    #[test]
    fn set_types_parse() {
        let s = parse_schema("class Person { child: {Person}, tags: {{string}} }").unwrap();
        let c = s.classes.get_str("Person").unwrap();
        assert_eq!(
            c.attr_type(&"child".into()),
            Some(&Type::set(Type::class("Person")))
        );
        assert_eq!(
            c.attr_type(&"tags".into()),
            Some(&Type::set(Type::set(Type::STR)))
        );
    }

    #[test]
    fn new_in_capability_list() {
        let s = parse_schema("user u { new Broker, r_salary }").unwrap();
        let caps = s.user_str("u").unwrap();
        assert!(caps.allows(&FnRef::new_class("Broker")));
        assert!(caps.allows(&FnRef::read("salary")));
    }
}
