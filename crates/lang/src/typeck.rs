//! Type checker for schemas, function bodies, queries and requirements.
//!
//! Beyond ordinary typing this module enforces the restrictions the paper's
//! analysis depends on:
//!
//! * **recursion-freedom** (§2: *"We do not consider recursive functions"*) —
//!   the unfolding step of the static analysis terminates only because the
//!   access-function call graph is acyclic;
//! * query invocations take *atoms* (constants / from-clause variables) as
//!   arguments;
//! * requirements may attach inferability capabilities only to basic-typed
//!   positions (§3.2: object identifiers have no printable form, so
//!   "inferability on object identifiers does not make sense"), and no
//!   capability to `null`-typed positions (a one-value type can be neither
//!   usefully inferred nor altered).

use crate::ast::{AccessFnDef, BasicOp, Expr, Schema};
use crate::query::{Atom, CmpOp, CmpRhs, Cond, FromSource, Invocation, Query, SelectItem};
use crate::requirement::{Cap, Requirement};
use oodb_model::{AttrName, ClassName, FnName, FnRef, Type, VarName};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A type error, with enough structure for tests to assert on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeError {
    /// Model-level validation failed (duplicate/unknown classes, …).
    Model(String),
    /// The access-function call graph has a cycle.
    RecursiveFunctions {
        /// One cycle, as a list of function names.
        cycle: Vec<FnName>,
    },
    /// A called access function does not exist.
    UnknownFunction {
        /// Missing name.
        name: FnName,
        /// Where it was called from.
        context: String,
    },
    /// An attribute is not declared by any class.
    UnknownAttribute {
        /// Missing attribute.
        attr: AttrName,
        /// Where it was used.
        context: String,
    },
    /// A class is not declared.
    UnknownClass {
        /// Missing class.
        class: ClassName,
        /// Where it was used.
        context: String,
    },
    /// A variable is not in scope.
    UnboundVariable {
        /// Missing variable.
        var: VarName,
        /// Where it occurred.
        context: String,
    },
    /// Wrong number of arguments.
    ArityMismatch {
        /// What was invoked.
        target: String,
        /// Expected count.
        expected: usize,
        /// Actual count.
        actual: usize,
        /// Where.
        context: String,
    },
    /// An expression has the wrong type.
    Mismatch {
        /// Expected type rendering.
        expected: String,
        /// Actual type.
        actual: Type,
        /// Where.
        context: String,
    },
    /// A requirement is malformed (unknown user/target, bad caps, …).
    BadRequirement {
        /// Description.
        message: String,
    },
    /// A capability list references something that does not exist.
    BadCapability {
        /// Description.
        message: String,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Model(m) => write!(f, "{m}"),
            TypeError::RecursiveFunctions { cycle } => {
                write!(f, "recursive access functions are not allowed: ")?;
                for (i, n) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{n}")?;
                }
                Ok(())
            }
            TypeError::UnknownFunction { name, context } => {
                write!(f, "unknown access function `{name}` in {context}")
            }
            TypeError::UnknownAttribute { attr, context } => {
                write!(f, "no class declares attribute `{attr}` ({context})")
            }
            TypeError::UnknownClass { class, context } => {
                write!(f, "unknown class `{class}` in {context}")
            }
            TypeError::UnboundVariable { var, context } => {
                write!(f, "unbound variable `{var}` in {context}")
            }
            TypeError::ArityMismatch {
                target,
                expected,
                actual,
                context,
            } => write!(
                f,
                "`{target}` expects {expected} argument(s), got {actual} in {context}"
            ),
            TypeError::Mismatch {
                expected,
                actual,
                context,
            } => write!(f, "expected {expected}, found `{actual}` in {context}"),
            TypeError::BadRequirement { message } => write!(f, "bad requirement: {message}"),
            TypeError::BadCapability { message } => write!(f, "bad capability list: {message}"),
        }
    }
}

impl std::error::Error for TypeError {}

/// Lexical environment for expression checking.
#[derive(Clone, Debug, Default)]
struct Env {
    vars: Vec<(VarName, Type)>,
}

impl Env {
    fn lookup(&self, v: &VarName) -> Option<&Type> {
        self.vars.iter().rev().find(|(n, _)| n == v).map(|(_, t)| t)
    }

    fn push(&mut self, v: VarName, t: Type) {
        self.vars.push((v, t));
    }

    fn truncate(&mut self, n: usize) {
        self.vars.truncate(n);
    }

    fn len(&self) -> usize {
        self.vars.len()
    }
}

/// All `(class, type)` declarations of an attribute name across the schema.
pub fn attr_decls<'a>(schema: &'a Schema, attr: &AttrName) -> Vec<(&'a ClassName, &'a Type)> {
    schema
        .classes
        .iter()
        .filter_map(|c| c.attr_type(attr).map(|t| (&c.name, t)))
        .collect()
}

/// Arity of anything invocable.
pub fn fn_ref_arity(schema: &Schema, target: &FnRef) -> Option<usize> {
    match target {
        FnRef::Access(f) => schema.function(f).map(AccessFnDef::arity),
        FnRef::Read(a) => {
            if attr_decls(schema, a).is_empty() {
                None
            } else {
                Some(1)
            }
        }
        FnRef::Write(a) => {
            if attr_decls(schema, a).is_empty() {
                None
            } else {
                Some(2)
            }
        }
        FnRef::New(c) => schema.classes.get(c).map(|d| d.attrs.len()),
    }
}

/// Check a whole schema: classes, functions (types + recursion-freedom),
/// capability lists and requirements.
pub fn check_schema(schema: &Schema) -> Result<(), TypeError> {
    schema
        .classes
        .validate()
        .map_err(|e| TypeError::Model(e.to_string()))?;
    check_recursion_freedom(schema)?;
    for def in schema.functions.values() {
        check_function(schema, def)?;
    }
    for (user, caps) in &schema.users {
        for c in caps.iter() {
            check_fn_ref_exists(schema, c).map_err(|mut e| {
                if let TypeError::BadCapability { message } = &mut e {
                    *message = format!("user `{user}`: {message}");
                }
                e
            })?;
        }
    }
    for req in &schema.requirements {
        check_requirement(schema, req)?;
    }
    Ok(())
}

fn check_fn_ref_exists(schema: &Schema, target: &FnRef) -> Result<(), TypeError> {
    let ok = match target {
        FnRef::Access(f) => schema.function(f).is_some(),
        FnRef::Read(a) | FnRef::Write(a) => !attr_decls(schema, a).is_empty(),
        FnRef::New(c) => schema.classes.get(c).is_some(),
    };
    if ok {
        Ok(())
    } else {
        Err(TypeError::BadCapability {
            message: format!("`{target}` does not exist in the schema"),
        })
    }
}

/// Detect cycles in the access-function call graph; also rejects calls to
/// unknown functions.
fn check_recursion_freedom(schema: &Schema) -> Result<(), TypeError> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color: BTreeMap<&FnName, Color> =
        schema.functions.keys().map(|k| (k, Color::White)).collect();
    let mut stack_names: Vec<FnName> = Vec::new();

    fn visit<'a>(
        schema: &'a Schema,
        name: &'a FnName,
        color: &mut BTreeMap<&'a FnName, Color>,
        stack: &mut Vec<FnName>,
    ) -> Result<(), TypeError> {
        match color.get(name) {
            None => {
                return Err(TypeError::UnknownFunction {
                    name: name.clone(),
                    context: stack
                        .last()
                        .map(|f| format!("body of `{f}`"))
                        .unwrap_or_else(|| "schema".to_owned()),
                })
            }
            Some(Color::Black) => return Ok(()),
            Some(Color::Grey) => {
                let start = stack.iter().position(|n| n == name).unwrap_or(0);
                let mut cycle: Vec<FnName> = stack[start..].to_vec();
                cycle.push(name.clone());
                return Err(TypeError::RecursiveFunctions { cycle });
            }
            Some(Color::White) => {}
        }
        color.insert(name, Color::Grey);
        stack.push(name.clone());
        let def = schema.function(name).expect("colored implies defined");
        for callee in def.body.called_functions() {
            let callee_ref = schema
                .functions
                .keys()
                .find(|k| **k == callee)
                .ok_or_else(|| TypeError::UnknownFunction {
                    name: callee.clone(),
                    context: format!("body of `{name}`"),
                })?;
            visit(schema, callee_ref, color, stack)?;
        }
        stack.pop();
        color.insert(name, Color::Black);
        Ok(())
    }

    let names: Vec<&FnName> = schema.functions.keys().collect();
    for name in names {
        if color.get(name) == Some(&Color::White) {
            visit(schema, name, &mut color, &mut stack_names)?;
        }
    }
    Ok(())
}

/// Check one access function definition.
fn check_function(schema: &Schema, def: &AccessFnDef) -> Result<(), TypeError> {
    let ctx = format!("function `{}`", def.name);
    // Parameter types must exist.
    for (p, t) in &def.params {
        check_type_exists(schema, t, &format!("{ctx}, parameter `{p}`"))?;
    }
    check_type_exists(schema, &def.ret, &format!("{ctx}, return type"))?;
    // Duplicate parameter names.
    let mut seen = BTreeSet::new();
    for (p, _) in &def.params {
        if !seen.insert(p.clone()) {
            return Err(TypeError::Model(format!(
                "duplicate parameter `{p}` in {ctx}"
            )));
        }
    }
    let mut env = Env::default();
    for (p, t) in &def.params {
        env.push(p.clone(), t.clone());
    }
    let body_ty = type_of_expr_inner(schema, &mut env, &def.body, &ctx)?;
    if !def.ret.accepts(&body_ty) {
        return Err(TypeError::Mismatch {
            expected: format!("return type `{}`", def.ret),
            actual: body_ty,
            context: ctx,
        });
    }
    Ok(())
}

fn check_type_exists(schema: &Schema, t: &Type, ctx: &str) -> Result<(), TypeError> {
    match t {
        Type::Basic(_) | Type::Null => Ok(()),
        Type::Class(c) => {
            if schema.classes.get(c).is_some() {
                Ok(())
            } else {
                Err(TypeError::UnknownClass {
                    class: c.clone(),
                    context: ctx.to_owned(),
                })
            }
        }
        Type::Set(inner) => check_type_exists(schema, inner, ctx),
    }
}

/// Infer the type of an expression in the given environment.
pub fn type_of_expr(
    schema: &Schema,
    env: &mut Env2,
    expr: &Expr,
    ctx: &str,
) -> Result<Type, TypeError> {
    type_of_expr_inner(schema, &mut env.0, expr, ctx)
}

/// Opaque environment wrapper so callers can build environments without
/// depending on internal representation.
#[derive(Clone, Debug, Default)]
pub struct Env2(Env);

impl Env2 {
    /// Empty environment.
    pub fn new() -> Env2 {
        Env2::default()
    }

    /// Bind a variable.
    pub fn bind(&mut self, v: impl Into<VarName>, t: Type) {
        self.0.push(v.into(), t);
    }
}

fn type_of_expr_inner(
    schema: &Schema,
    env: &mut Env,
    expr: &Expr,
    ctx: &str,
) -> Result<Type, TypeError> {
    match expr {
        Expr::Const(l) => Ok(l.ty()),
        Expr::Var(v) => env
            .lookup(v)
            .cloned()
            .ok_or_else(|| TypeError::UnboundVariable {
                var: v.clone(),
                context: ctx.to_owned(),
            }),
        Expr::Basic(op, args) => {
            if args.len() != op.arity() {
                return Err(TypeError::ArityMismatch {
                    target: op.symbol().to_owned(),
                    expected: op.arity(),
                    actual: args.len(),
                    context: ctx.to_owned(),
                });
            }
            let mut tys = Vec::with_capacity(args.len());
            for a in args {
                tys.push(type_of_expr_inner(schema, env, a, ctx)?);
            }
            type_of_basic(*op, &tys, ctx)
        }
        Expr::Call(f, args) => {
            let def = schema
                .function(f)
                .ok_or_else(|| TypeError::UnknownFunction {
                    name: f.clone(),
                    context: ctx.to_owned(),
                })?;
            if args.len() != def.arity() {
                return Err(TypeError::ArityMismatch {
                    target: f.to_string(),
                    expected: def.arity(),
                    actual: args.len(),
                    context: ctx.to_owned(),
                });
            }
            for (a, (p, want)) in args.iter().zip(&def.params) {
                let got = type_of_expr_inner(schema, env, a, ctx)?;
                if !want.accepts(&got) {
                    return Err(TypeError::Mismatch {
                        expected: format!("`{want}` for parameter `{p}` of `{f}`"),
                        actual: got,
                        context: ctx.to_owned(),
                    });
                }
            }
            Ok(def.ret.clone())
        }
        Expr::Read(attr, recv) => {
            let recv_ty = type_of_expr_inner(schema, env, recv, ctx)?;
            let class = recv_ty.as_class().ok_or_else(|| TypeError::Mismatch {
                expected: "an object type as receiver of a read".to_owned(),
                actual: recv_ty.clone(),
                context: ctx.to_owned(),
            })?;
            let def = schema
                .classes
                .get(class)
                .ok_or_else(|| TypeError::UnknownClass {
                    class: class.clone(),
                    context: ctx.to_owned(),
                })?;
            def.attr_type(attr)
                .cloned()
                .ok_or_else(|| TypeError::UnknownAttribute {
                    attr: attr.clone(),
                    context: format!("class `{class}` has no such attribute ({ctx})"),
                })
        }
        Expr::Write(attr, recv, val) => {
            let recv_ty = type_of_expr_inner(schema, env, recv, ctx)?;
            let class = recv_ty.as_class().ok_or_else(|| TypeError::Mismatch {
                expected: "an object type as receiver of a write".to_owned(),
                actual: recv_ty.clone(),
                context: ctx.to_owned(),
            })?;
            let def = schema
                .classes
                .get(class)
                .ok_or_else(|| TypeError::UnknownClass {
                    class: class.clone(),
                    context: ctx.to_owned(),
                })?;
            let want = def
                .attr_type(attr)
                .ok_or_else(|| TypeError::UnknownAttribute {
                    attr: attr.clone(),
                    context: format!("class `{class}` has no such attribute ({ctx})"),
                })?
                .clone();
            let got = type_of_expr_inner(schema, env, val, ctx)?;
            if !want.accepts(&got) {
                return Err(TypeError::Mismatch {
                    expected: format!("`{want}` for attribute `{class}.{attr}`"),
                    actual: got,
                    context: ctx.to_owned(),
                });
            }
            Ok(Type::Null)
        }
        Expr::New(class, args) => {
            let def = schema
                .classes
                .get(class)
                .ok_or_else(|| TypeError::UnknownClass {
                    class: class.clone(),
                    context: ctx.to_owned(),
                })?;
            if args.len() != def.attrs.len() {
                return Err(TypeError::ArityMismatch {
                    target: format!("new {class}"),
                    expected: def.attrs.len(),
                    actual: args.len(),
                    context: ctx.to_owned(),
                });
            }
            for (a, attr) in args.iter().zip(&def.attrs) {
                let got = type_of_expr_inner(schema, env, a, ctx)?;
                if !attr.ty.accepts(&got) {
                    return Err(TypeError::Mismatch {
                        expected: format!("`{}` for attribute `{}.{}`", attr.ty, class, attr.name),
                        actual: got,
                        context: ctx.to_owned(),
                    });
                }
            }
            Ok(Type::Class(class.clone()))
        }
        Expr::Let { bindings, body } => {
            let mark = env.len();
            for (name, value) in bindings {
                let t = type_of_expr_inner(schema, env, value, ctx)?;
                env.push(name.clone(), t);
            }
            let t = type_of_expr_inner(schema, env, body, ctx);
            env.truncate(mark);
            t
        }
    }
}

fn type_of_basic(op: BasicOp, tys: &[Type], ctx: &str) -> Result<Type, TypeError> {
    use BasicOp::*;
    let want_all = |want: Type, result: Type| -> Result<Type, TypeError> {
        for t in tys {
            if *t != want {
                return Err(TypeError::Mismatch {
                    expected: format!("`{want}` operand for `{}`", op.symbol()),
                    actual: t.clone(),
                    context: ctx.to_owned(),
                });
            }
        }
        Ok(result)
    };
    match op {
        Add | Sub | Mul | Div | Mod | Neg => want_all(Type::INT, Type::INT),
        Ge | Gt | Le | Lt => want_all(Type::INT, Type::BOOL),
        And | Or | Not => want_all(Type::BOOL, Type::BOOL),
        Concat => want_all(Type::STR, Type::STR),
        EqOp | NeOp => {
            let (a, b) = (&tys[0], &tys[1]);
            if !a.is_basic() || a != b {
                return Err(TypeError::Mismatch {
                    expected: format!("two equal basic-typed operands for `{}`", op.symbol()),
                    actual: if a.is_basic() { b.clone() } else { a.clone() },
                    context: ctx.to_owned(),
                });
            }
            Ok(Type::BOOL)
        }
    }
}

/// The argument types and result type of anything invocable, resolved for a
/// specific receiver class where attributes are ambiguous.
///
/// For `r_att`/`w_att` with several declaring classes, `receiver` selects
/// which; `None` is accepted only when exactly one class declares the
/// attribute.
pub fn fn_ref_signature(
    schema: &Schema,
    target: &FnRef,
    receiver: Option<&ClassName>,
) -> Result<(Vec<Type>, Type), TypeError> {
    match target {
        FnRef::Access(f) => {
            let def = schema
                .function(f)
                .ok_or_else(|| TypeError::UnknownFunction {
                    name: f.clone(),
                    context: "signature lookup".to_owned(),
                })?;
            Ok((
                def.params.iter().map(|(_, t)| t.clone()).collect(),
                def.ret.clone(),
            ))
        }
        FnRef::Read(a) | FnRef::Write(a) => {
            let decls = attr_decls(schema, a);
            let (class, attr_ty) = match receiver {
                Some(c) => {
                    let t = decls
                        .iter()
                        .find(|(cn, _)| *cn == c)
                        .map(|(_, t)| (*t).clone())
                        .ok_or_else(|| TypeError::UnknownAttribute {
                            attr: a.clone(),
                            context: format!("class `{c}`"),
                        })?;
                    (c.clone(), t)
                }
                None => {
                    if decls.len() != 1 {
                        return Err(TypeError::UnknownAttribute {
                            attr: a.clone(),
                            context: format!(
                                "attribute declared by {} classes; receiver class required",
                                decls.len()
                            ),
                        });
                    }
                    (decls[0].0.clone(), decls[0].1.clone())
                }
            };
            match target {
                FnRef::Read(_) => Ok((vec![Type::Class(class)], attr_ty)),
                FnRef::Write(_) => Ok((vec![Type::Class(class), attr_ty], Type::Null)),
                _ => unreachable!("outer match restricts to Read/Write"),
            }
        }
        FnRef::New(c) => {
            let def = schema
                .classes
                .get(c)
                .ok_or_else(|| TypeError::UnknownClass {
                    class: c.clone(),
                    context: "signature lookup".to_owned(),
                })?;
            Ok((
                def.attrs.iter().map(|a| a.ty.clone()).collect(),
                Type::Class(c.clone()),
            ))
        }
    }
}

/// Check a requirement against the schema.
pub fn check_requirement(schema: &Schema, req: &Requirement) -> Result<(), TypeError> {
    if schema.user(&req.user).is_none() {
        return Err(TypeError::BadRequirement {
            message: format!("unknown user `{}` in {req}", req.user),
        });
    }
    check_fn_ref_exists(schema, &req.target).map_err(|_| TypeError::BadRequirement {
        message: format!("unknown target `{}` in {req}", req.target),
    })?;
    let arity = fn_ref_arity(schema, &req.target).expect("existence checked above");
    if req.arity() != arity {
        return Err(TypeError::BadRequirement {
            message: format!(
                "target `{}` has arity {arity}, requirement lists {} argument(s)",
                req.target,
                req.arity()
            ),
        });
    }
    if req.cap_count() == 0 {
        return Err(TypeError::BadRequirement {
            message: format!("requirement {req} lists no capabilities"),
        });
    }

    // Resolve position types; for ambiguous attributes check each declaring
    // class's signature.
    let signatures: Vec<(Vec<Type>, Type)> = match &req.target {
        FnRef::Read(a) | FnRef::Write(a) => attr_decls(schema, a)
            .iter()
            .map(|(c, _)| fn_ref_signature(schema, &req.target, Some(c)))
            .collect::<Result<_, _>>()?,
        _ => vec![fn_ref_signature(schema, &req.target, None)?],
    };
    for (arg_tys, ret_ty) in &signatures {
        for (i, caps) in req.arg_caps.iter().enumerate() {
            check_caps_for_type(caps, &arg_tys[i], &format!("argument {} of {req}", i + 1))?;
        }
        check_caps_for_type(&req.ret_caps, ret_ty, &format!("returned value of {req}"))?;
    }
    Ok(())
}

fn check_caps_for_type(caps: &[Cap], ty: &Type, ctx: &str) -> Result<(), TypeError> {
    for c in caps {
        if *ty == Type::Null {
            return Err(TypeError::BadRequirement {
                message: format!("capability `{c}` on `null`-typed {ctx} is meaningless"),
            });
        }
        if c.is_inferability() && !ty.is_basic() {
            return Err(TypeError::BadRequirement {
                message: format!(
                    "inferability capability `{c}` on non-basic type `{ty}` ({ctx}): object \
                     identifiers have no printable form (paper §3.2)"
                ),
            });
        }
    }
    Ok(())
}

/// Check a query issued by a user; returns the types of the select items.
/// Capability enforcement is the engine's job — this is typing only.
pub fn check_query(schema: &Schema, query: &Query) -> Result<Vec<Type>, TypeError> {
    let mut env = Env::default();
    check_query_inner(schema, query, &mut env)
}

fn check_query_inner(
    schema: &Schema,
    query: &Query,
    env: &mut Env,
) -> Result<Vec<Type>, TypeError> {
    let mark = env.len();
    for (var, src) in &query.from {
        let elem_ty = match src {
            FromSource::Class(c) => {
                if schema.classes.get(c).is_none() {
                    return Err(TypeError::UnknownClass {
                        class: c.clone(),
                        context: "from clause".to_owned(),
                    });
                }
                Type::Class(c.clone())
            }
            FromSource::SetExpr(inv) => {
                let t = type_of_invocation(schema, inv, env)?;
                t.as_set_elem()
                    .cloned()
                    .ok_or_else(|| TypeError::Mismatch {
                        expected: "a set-valued expression in from clause".to_owned(),
                        actual: t.clone(),
                        context: format!("binding of `{var}`"),
                    })?
            }
        };
        env.push(var.clone(), elem_ty);
    }
    let mut item_tys = Vec::with_capacity(query.items.len());
    for item in &query.items {
        let t = match item {
            SelectItem::Invoke(inv) => type_of_invocation(schema, inv, env)?,
            SelectItem::Nested(q) => {
                let inner = check_query_inner(schema, q, env)?;
                // A nested single-item select yields a set of that item's
                // type; multi-item selects yield sets of tuples, which we do
                // not type further (render as a set of strings).
                if inner.len() == 1 {
                    Type::set(inner.into_iter().next().expect("len checked"))
                } else {
                    Type::set(Type::STR)
                }
            }
            SelectItem::Atom(a) => type_of_atom(schema, a, env)?,
        };
        item_tys.push(t);
    }
    if let Some(cond) = &query.filter {
        check_cond(schema, cond, env)?;
    }
    env.truncate(mark);
    Ok(item_tys)
}

fn type_of_atom(_schema: &Schema, atom: &Atom, env: &mut Env) -> Result<Type, TypeError> {
    match atom {
        Atom::Lit(l) => Ok(l.ty()),
        Atom::Var(v) => env
            .lookup(v)
            .cloned()
            .ok_or_else(|| TypeError::UnboundVariable {
                var: v.clone(),
                context: "query".to_owned(),
            }),
    }
}

fn type_of_invocation(schema: &Schema, inv: &Invocation, env: &mut Env) -> Result<Type, TypeError> {
    // Resolve receiver class from the first argument for attribute ops.
    let receiver: Option<ClassName> = match &inv.target {
        FnRef::Read(_) | FnRef::Write(_) => inv.args.first().and_then(|a| {
            type_of_atom(schema, a, env)
                .ok()
                .and_then(|t| t.as_class().cloned())
        }),
        _ => None,
    };
    let (arg_tys, ret_ty) = fn_ref_signature(schema, &inv.target, receiver.as_ref())?;
    if inv.args.len() != arg_tys.len() {
        return Err(TypeError::ArityMismatch {
            target: inv.target.to_string(),
            expected: arg_tys.len(),
            actual: inv.args.len(),
            context: "query".to_owned(),
        });
    }
    for (a, want) in inv.args.iter().zip(&arg_tys) {
        let got = type_of_atom(schema, a, env)?;
        if !want.accepts(&got) {
            return Err(TypeError::Mismatch {
                expected: format!("`{want}` argument for `{}`", inv.target),
                actual: got,
                context: "query".to_owned(),
            });
        }
    }
    Ok(ret_ty)
}

fn check_cond(schema: &Schema, cond: &Cond, env: &mut Env) -> Result<(), TypeError> {
    match cond {
        Cond::True => Ok(()),
        Cond::And(a, b) | Cond::Or(a, b) => {
            check_cond(schema, a, env)?;
            check_cond(schema, b, env)
        }
        Cond::Cmp { lhs, op, rhs } => {
            let lt = type_of_invocation(schema, lhs, env)?;
            let rt = match rhs {
                CmpRhs::Atom(a) => type_of_atom(schema, a, env)?,
                CmpRhs::Invoke(i) => type_of_invocation(schema, i, env)?,
            };
            match op {
                CmpOp::Ge | CmpOp::Gt | CmpOp::Le | CmpOp::Lt => {
                    if lt != Type::INT || rt != Type::INT {
                        return Err(TypeError::Mismatch {
                            expected: format!("`int` operands for `{}`", op.symbol()),
                            actual: if lt == Type::INT { rt } else { lt },
                            context: "where clause".to_owned(),
                        });
                    }
                }
                CmpOp::Eq | CmpOp::Ne => {
                    if !lt.is_basic() || lt != rt {
                        return Err(TypeError::Mismatch {
                            expected: "two equal basic-typed operands".to_owned(),
                            actual: rt,
                            context: "where clause".to_owned(),
                        });
                    }
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_query, parse_requirement, parse_schema};

    const STOCKBROKER: &str = r#"
        class Broker { name: string, salary: int, budget: int, profit: int }

        fn calcSalary(budget: int, profit: int): int {
          budget / 10 + profit / 2
        }

        fn checkBudget(broker: Broker): bool {
          r_budget(broker) >= 10 * r_salary(broker)
        }

        fn updateSalary(broker: Broker): null {
          w_salary(broker, calcSalary(r_budget(broker), r_profit(broker)))
        }

        user clerk { checkBudget, w_budget }
        user payroll { updateSalary, w_budget }

        require (clerk, r_salary(x) : ti)
        require (payroll, w_salary(x, v: ta))
    "#;

    #[test]
    fn stockbroker_schema_checks() {
        let s = parse_schema(STOCKBROKER).unwrap();
        check_schema(&s).unwrap();
    }

    #[test]
    fn recursion_is_rejected() {
        let s = parse_schema("fn f(x: int): int { g(x) } fn g(x: int): int { f(x) }").unwrap();
        match check_schema(&s).unwrap_err() {
            TypeError::RecursiveFunctions { cycle } => {
                assert!(cycle.len() >= 2);
            }
            other => panic!("expected recursion error, got {other}"),
        }
        // Self recursion too.
        let s = parse_schema("fn f(x: int): int { f(x) }").unwrap();
        assert!(matches!(
            check_schema(&s),
            Err(TypeError::RecursiveFunctions { .. })
        ));
    }

    #[test]
    fn unknown_callee_rejected() {
        let s = parse_schema("fn f(x: int): int { g(x) }").unwrap();
        assert!(matches!(
            check_schema(&s),
            Err(TypeError::UnknownFunction { .. })
        ));
    }

    #[test]
    fn body_type_must_match() {
        let s = parse_schema("fn f(x: int): bool { x + 1 }").unwrap();
        assert!(matches!(check_schema(&s), Err(TypeError::Mismatch { .. })));
    }

    #[test]
    fn attribute_ops_typed() {
        let s = parse_schema(
            "class C { x: int } fn f(c: C): int { r_x(c) } fn g(c: C): null { w_x(c, 1) }",
        )
        .unwrap();
        check_schema(&s).unwrap();

        let bad = parse_schema("class C { x: int } fn f(c: C): int { r_y(c) }").unwrap();
        assert!(matches!(
            check_schema(&bad),
            Err(TypeError::UnknownAttribute { .. })
        ));

        let bad = parse_schema("class C { x: int } fn f(c: C): null { w_x(c, true) }").unwrap();
        assert!(matches!(
            check_schema(&bad),
            Err(TypeError::Mismatch { .. })
        ));

        let bad = parse_schema("fn f(x: int): int { r_a(x) }").unwrap();
        assert!(matches!(
            check_schema(&bad),
            Err(TypeError::Mismatch { .. })
        ));
    }

    #[test]
    fn new_constructor_typed() {
        let s = parse_schema("class P { x: int, y: int } fn mk(a: int): P { new P(a, a + 1) }")
            .unwrap();
        check_schema(&s).unwrap();
        let bad = parse_schema("class P { x: int, y: int } fn mk(a: int): P { new P(a) }").unwrap();
        assert!(matches!(
            check_schema(&bad),
            Err(TypeError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn let_scoping() {
        let s = parse_schema("fn f(x: int): int { let y = x + 1, z = y * 2 in z end }").unwrap();
        check_schema(&s).unwrap();
        let bad = parse_schema("fn f(x: int): int { let y = z in y end }").unwrap();
        assert!(matches!(
            check_schema(&bad),
            Err(TypeError::UnboundVariable { .. })
        ));
        // A let-bound variable does not leak out of its body.
        let bad = parse_schema("fn f(x: int): int { (let y = 1 in y end) + y }").unwrap();
        assert!(matches!(
            check_schema(&bad),
            Err(TypeError::UnboundVariable { .. })
        ));
    }

    #[test]
    fn requirement_checks() {
        let s = parse_schema(STOCKBROKER).unwrap();

        let bad = parse_requirement("(ghost, r_salary(x) : ti)").unwrap();
        assert!(matches!(
            check_requirement(&s, &bad),
            Err(TypeError::BadRequirement { .. })
        ));

        let bad = parse_requirement("(clerk, r_missing(x) : ti)").unwrap();
        assert!(matches!(
            check_requirement(&s, &bad),
            Err(TypeError::BadRequirement { .. })
        ));

        let bad = parse_requirement("(clerk, r_salary(x, y) : ti)").unwrap();
        assert!(matches!(
            check_requirement(&s, &bad),
            Err(TypeError::BadRequirement { .. })
        ));

        // No capabilities at all.
        let bad = parse_requirement("(clerk, r_salary(x))").unwrap();
        assert!(matches!(
            check_requirement(&s, &bad),
            Err(TypeError::BadRequirement { .. })
        ));

        // Inferability on an object-typed argument.
        let bad = parse_requirement("(clerk, checkBudget(b: ti) : pi)").unwrap();
        assert!(matches!(
            check_requirement(&s, &bad),
            Err(TypeError::BadRequirement { .. })
        ));

        // Alterability on an object-typed argument is fine.
        let ok = parse_requirement("(clerk, checkBudget(b: ta) : pi)").unwrap();
        check_requirement(&s, &ok).unwrap();

        // Capability on the null return of a write is meaningless.
        let bad = parse_requirement("(clerk, w_budget(x, v) : ti)").unwrap();
        assert!(matches!(
            check_requirement(&s, &bad),
            Err(TypeError::BadRequirement { .. })
        ));
    }

    #[test]
    fn query_typing() {
        let s = parse_schema(
            r#"
            class Person { name: string, age: int, child: {Person} }
            fn profile(p: Person): string { "p: " ++ r_name(p) }
            user u { profile, r_name, r_age, r_child }
            "#,
        )
        .unwrap();
        check_schema(&s).unwrap();

        let q = parse_query("select r_name(p), profile(p) from p in Person where r_age(p) > 20")
            .unwrap();
        let tys = check_query(&s, &q).unwrap();
        assert_eq!(tys, vec![Type::STR, Type::STR]);

        let q =
            parse_query("select (select r_name(q) from q in r_child(p)) from p in Person").unwrap();
        let tys = check_query(&s, &q).unwrap();
        assert_eq!(tys, vec![Type::set(Type::STR)]);

        // Unknown class.
        let q = parse_query("select r_name(p) from p in Nobody").unwrap();
        assert!(matches!(
            check_query(&s, &q),
            Err(TypeError::UnknownClass { .. })
        ));

        // From over a non-set function.
        let q = parse_query("select r_name(p) from p in profile(p)").unwrap();
        assert!(check_query(&s, &q).is_err());

        // Where-clause type error.
        let q = parse_query("select r_name(p) from p in Person where r_name(p) > 3").unwrap();
        assert!(matches!(
            check_query(&s, &q),
            Err(TypeError::Mismatch { .. })
        ));
    }

    #[test]
    fn attack_query_types() {
        let s = parse_schema(STOCKBROKER).unwrap();
        let q = parse_query(
            "select w_budget(b, 1), checkBudget(b), w_budget(b, 2), checkBudget(b) \
             from b in Broker where r_name(b) == \"John\"",
        )
        .unwrap();
        let tys = check_query(&s, &q).unwrap();
        assert_eq!(tys, vec![Type::Null, Type::BOOL, Type::Null, Type::BOOL]);
    }

    #[test]
    fn ambiguous_attribute_needs_receiver() {
        let s = parse_schema("class A { v: int } class B { v: bool }").unwrap();
        check_schema(&s).unwrap();
        // Signature lookup without a receiver is ambiguous…
        assert!(fn_ref_signature(&s, &FnRef::read("v"), None).is_err());
        // …but resolvable with one.
        let (args, ret) =
            fn_ref_signature(&s, &FnRef::read("v"), Some(&ClassName::new("B"))).unwrap();
        assert_eq!(args, vec![Type::class("B")]);
        assert_eq!(ret, Type::BOOL);
    }
}
