//! Hand-written lexer for the concrete syntax.
//!
//! Comments run from `#` or `//` to end of line. String literals use double
//! quotes with `\"`, `\\`, `\n`, `\t` escapes. Identifiers beginning with
//! `r_` / `w_` are ordinary identifiers at the lexical level; the parser
//! decides whether they denote special functions.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword (keywords are recognised by the parser through
    /// [`Token::is_kw`]).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal (unescaped contents).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `+`
    Plus,
    /// `++`
    PlusPlus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
}

impl Token {
    /// Is this the given keyword?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s == kw)
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::Comma => write!(f, ","),
            Token::Colon => write!(f, ":"),
            Token::Assign => write!(f, "="),
            Token::EqEq => write!(f, "=="),
            Token::NotEq => write!(f, "!="),
            Token::Ge => write!(f, ">="),
            Token::Gt => write!(f, ">"),
            Token::Le => write!(f, "<="),
            Token::Lt => write!(f, "<"),
            Token::Plus => write!(f, "+"),
            Token::PlusPlus => write!(f, "++"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
        }
    }
}

/// A token plus its 1-based line number, for error messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: u32,
}

/// Lexing error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenise a source string.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line: u32 = 1;

    macro_rules! push {
        ($t:expr) => {
            out.push(Spanned { token: $t, line })
        };
    }

    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                // Comment to end of line.
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    push!(Token::Slash);
                }
            }
            '(' => {
                chars.next();
                push!(Token::LParen);
            }
            ')' => {
                chars.next();
                push!(Token::RParen);
            }
            '{' => {
                chars.next();
                push!(Token::LBrace);
            }
            '}' => {
                chars.next();
                push!(Token::RBrace);
            }
            ',' => {
                chars.next();
                push!(Token::Comma);
            }
            ':' => {
                chars.next();
                push!(Token::Colon);
            }
            '=' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    push!(Token::EqEq);
                } else {
                    push!(Token::Assign);
                }
            }
            '!' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    push!(Token::NotEq);
                } else {
                    return Err(LexError {
                        message: "unexpected `!` (did you mean `!=` or `not`?)".to_owned(),
                        line,
                    });
                }
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    push!(Token::Ge);
                } else {
                    push!(Token::Gt);
                }
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    push!(Token::Le);
                } else {
                    push!(Token::Lt);
                }
            }
            '+' => {
                chars.next();
                if chars.peek() == Some(&'+') {
                    chars.next();
                    push!(Token::PlusPlus);
                } else {
                    push!(Token::Plus);
                }
            }
            '-' => {
                chars.next();
                push!(Token::Minus);
            }
            '*' => {
                chars.next();
                push!(Token::Star);
            }
            '%' => {
                chars.next();
                push!(Token::Percent);
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        None => {
                            return Err(LexError {
                                message: "unterminated string literal".to_owned(),
                                line,
                            })
                        }
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            other => {
                                return Err(LexError {
                                    message: format!("bad escape {other:?} in string literal"),
                                    line,
                                })
                            }
                        },
                        Some('\n') => {
                            return Err(LexError {
                                message: "newline in string literal".to_owned(),
                                line,
                            })
                        }
                        Some(c) => s.push(c),
                    }
                }
                push!(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let mut n = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        n.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let value: i64 = n.parse().map_err(|_| LexError {
                    message: format!("integer literal `{n}` out of range"),
                    line,
                })?;
                push!(Token::Int(value));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                push!(Token::Ident(s));
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character {other:?}"),
                    line,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("f(x) >= 10 * r_salary"),
            vec![
                Token::Ident("f".into()),
                Token::LParen,
                Token::Ident("x".into()),
                Token::RParen,
                Token::Ge,
                Token::Int(10),
                Token::Star,
                Token::Ident("r_salary".into()),
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let spanned = lex("a # comment\nb // another\nc").unwrap();
        assert_eq!(spanned.len(), 3);
        assert_eq!(spanned[0].line, 1);
        assert_eq!(spanned[1].line, 2);
        assert_eq!(spanned[2].line, 3);
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#""John \"the\" broker\n""#),
            vec![Token::Str("John \"the\" broker\n".into())]
        );
        assert!(lex("\"unterminated").is_err());
        assert!(lex("\"bad \\q escape\"").is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("== != >= > <= < = + ++ - * / %"),
            vec![
                Token::EqEq,
                Token::NotEq,
                Token::Ge,
                Token::Gt,
                Token::Le,
                Token::Lt,
                Token::Assign,
                Token::Plus,
                Token::PlusPlus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::Percent,
            ]
        );
    }

    #[test]
    fn bare_bang_is_error() {
        let err = lex("!x").unwrap_err();
        assert!(err.message.contains("!"));
    }

    #[test]
    fn unexpected_char_reports_line() {
        let err = lex("ok\n@").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn integer_overflow_is_error() {
        assert!(lex("99999999999999999999").is_err());
    }
}
