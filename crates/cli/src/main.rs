//! Thin binary shim over [`secflow_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match secflow_cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", secflow_cli::USAGE);
            std::process::exit(2);
        }
    };
    let (report, code) = secflow_cli::run(&cmd);
    print!("{report}");
    std::process::exit(code);
}
