//! Thin binary shim over [`secflow_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, obs) = match secflow_cli::parse_args_with_obs(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", secflow_cli::USAGE);
            std::process::exit(2);
        }
    };
    let out = secflow_cli::run_with_obs(&cmd, &obs);
    print!("{}", out.stdout);
    eprint!("{}", out.stderr);
    std::process::exit(out.code);
}
