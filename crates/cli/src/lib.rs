//! # secflow-cli
//!
//! The command-line front end. All behaviour lives here (unit-testable);
//! `main.rs` is a thin argument shim.
//!
//! ```text
//! secflow check  policy.sfl [--explain] [--certify] [--jobs N]
//!                                              # run every `require`
//! secflow unfold policy.sfl --user clerk       # print S'(F)
//! secflow attack policy.sfl [--steps N]        # bounded concrete attacker
//! secflow fix    policy.sfl                    # minimal revocation repairs
//! secflow fmt    policy.sfl                    # parse + pretty-print
//! ```
//!
//! Every command also accepts `--metrics[=text|json]` (pipeline statistics
//! on stderr — phase timings, closure term/rule counters, fixpoint rounds)
//! and `--trace` (per-requirement phase lines on stderr as they complete).
//! Both write to **stderr** only, so stdout stays byte-identical and
//! diff-stable with and without them.
//!
//! Exit codes are distinct per outcome class (see [`exit`]):
//! 0 = all requirements satisfied, 1 = at least one violated,
//! 2 = command-line usage error, 3 = input error (unreadable file,
//! parse/type/analysis failure), 4 = `--certify` rejected a derivation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use oodb_lang::{check_schema, parse_schema, Schema};
use secflow::algorithm::{
    analyze_batch_cached, occurrences, AnalysisConfig, BatchOptions, BatchOutcome, ClosureCache,
};
use secflow::closure::{Closure, ProofMode};
use secflow::report::{render_derivation, render_term, Verdict};
use secflow::stats::ClosureStats;
use secflow::unfold::NProgram;
use secflow_dynamic::attack_requirement;
use secflow_dynamic::strategy::StrategySpec;
use secflow_dynamic::AttackerConfig;
use secflow_obs::{MetricsSink, Phases, Recorder};
use std::fmt::Write as _;
use std::sync::OnceLock;

/// Process exit codes, one constant per outcome class. Scripts can rely on
/// these staying distinct: a missing input file (3) is distinguishable from
/// a policy violation (1) or a mistyped flag (2).
pub mod exit {
    /// Every requirement satisfied (or nothing to do).
    pub const OK: i32 = 0;
    /// At least one requirement violated / attack realised / repair needed.
    pub const VIOLATION: i32 = 1;
    /// Command-line usage error: unknown command, unknown flag, bad value.
    pub const USAGE: i32 = 2;
    /// Input error: unreadable policy file, parse or type errors, unknown
    /// user, or an analysis failure (e.g. the term budget aborting).
    pub const INPUT: i32 = 3;
    /// `--certify` found a recorded derivation the independent proof
    /// checker rejects.
    pub const CERTIFY: i32 = 4;
}

/// A parsed command line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// `check <file> [--explain] [--jobs N] [--full-saturation]`
    Check {
        /// Policy file path.
        file: String,
        /// Print derivations for each violation.
        explain: bool,
        /// Worker threads for the batch analysis driver (1 = serial).
        jobs: usize,
        /// Saturate the full closure instead of the demand-driven slice.
        /// Verdicts and output are identical; this is the escape hatch for
        /// cross-checking the demand engine.
        full_saturation: bool,
        /// Re-validate every recorded derivation with the independent proof
        /// checker after analysis ([`Closure::certify`]); exit 4 if any
        /// derivation is rejected. Forces proof recording and full
        /// saturation.
        certify: bool,
    },
    /// `unfold <file> --user <name>`
    Unfold {
        /// Policy file path.
        file: String,
        /// User whose capability list to unfold.
        user: String,
    },
    /// `attack <file> [--steps N]`
    Attack {
        /// Policy file path.
        file: String,
        /// Probe-sequence bound.
        steps: usize,
    },
    /// `fix <file>`
    Fix {
        /// Policy file path.
        file: String,
    },
    /// `fmt <file>`
    Fmt {
        /// Policy file path.
        file: String,
    },
    /// `--help` or no arguments.
    Help,
}

/// How to render metrics on stderr.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Human-readable summary table.
    #[default]
    Text,
    /// Machine-readable JSON document.
    Json,
}

/// The observability flags, orthogonal to the command: `--metrics[=…]` and
/// `--trace`. Both emit to stderr only — stdout stays diff-stable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObsOptions {
    /// Emit a pipeline metrics summary after the command.
    pub metrics: Option<MetricsFormat>,
    /// Emit per-requirement phase lines as analysis progresses.
    pub trace: bool,
}

impl ObsOptions {
    /// Are both facilities off (the plain, uninstrumented path)?
    pub fn is_off(&self) -> bool {
        self.metrics.is_none() && !self.trace
    }
}

/// Usage text.
pub const USAGE: &str = "\
secflow — static detection of security flaws in object-oriented databases
         (Tajima, SIGMOD 1996)

USAGE:
  secflow check  <policy-file> [--explain] [--certify] [--jobs N]
                               [--full-saturation]
                                             run every `require`; exit 1 on flaws
                                             (--jobs fans user groups across N threads;
                                             --full-saturation disables the demand-driven
                                             engine and computes the complete closure —
                                             verdicts are identical either way;
                                             --certify re-validates every recorded
                                             derivation with the independent proof
                                             checker and exits 4 on any rejection)
  secflow unfold <policy-file> --user <u>    print the numbered unfolding S'(F)
  secflow attack <policy-file> [--steps N]   try to realise each flaw concretely
  secflow fix    <policy-file>               suggest minimal revocations per flaw
  secflow fmt    <policy-file>               parse and pretty-print the policy

OBSERVABILITY (any command; output goes to stderr, stdout is unchanged):
  --metrics[=text|json]   pipeline statistics: per-phase timings, closure
                          term counts per capability kind, rule firings,
                          fixpoint rounds, worklist peak, dedup rate
  --trace                 per-requirement phase timing lines as they finish

EXIT CODES (distinct per outcome class, stable for scripting):
  0   every requirement satisfied (or nothing to do)
  1   at least one requirement violated / attack realised / repair needed
  2   command-line usage error (unknown command or flag, bad value)
  3   input error: unreadable file, parse/type error, analysis failure
  4   --certify rejected a recorded derivation

POLICY FILES contain class, fn, user and require declarations:

  class Broker { name: string, salary: int, budget: int }
  fn checkBudget(b: Broker): bool { r_budget(b) >= 10 * r_salary(b) }
  user clerk { checkBudget, w_budget }
  require (clerk, r_salary(x) : ti)
";

/// Parse a command line including the observability flags. `--metrics`,
/// `--metrics=text`, `--metrics=json` and `--trace` are accepted anywhere
/// on the line; everything else goes through [`parse_args`].
pub fn parse_args_with_obs(args: &[String]) -> Result<(Command, ObsOptions), String> {
    let mut obs = ObsOptions::default();
    let mut rest = Vec::with_capacity(args.len());
    for a in args {
        match a.as_str() {
            "--metrics" | "--metrics=text" => obs.metrics = Some(MetricsFormat::Text),
            "--metrics=json" => obs.metrics = Some(MetricsFormat::Json),
            "--trace" => obs.trace = true,
            other if other.starts_with("--metrics=") => {
                let fmt = &other["--metrics=".len()..];
                return Err(format!("unknown metrics format `{fmt}` (use text or json)"));
            }
            _ => rest.push(a.clone()),
        }
    }
    Ok((parse_args(&rest)?, obs))
}

/// Parse a command line (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "-h" | "--help" | "help" => Ok(Command::Help),
        "check" => {
            let mut file = None;
            let mut explain = false;
            let mut jobs = 1usize;
            let mut full_saturation = false;
            let mut certify = false;
            let mut args = it.peekable();
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--explain" => explain = true,
                    "--full-saturation" => full_saturation = true,
                    "--certify" => certify = true,
                    "--jobs" => {
                        jobs = args
                            .next()
                            .ok_or("check: --jobs needs a value")?
                            .parse()
                            .map_err(|_| "check: --jobs must be a number")?;
                        if jobs == 0 {
                            return Err("check: --jobs must be at least 1".into());
                        }
                    }
                    _ if file.is_none() && !a.starts_with('-') => file = Some(a.clone()),
                    other => {
                        return Err(format!(
                            "unexpected argument `{other}` (check accepts --explain, \
                             --certify, --jobs N, --full-saturation)"
                        ))
                    }
                }
            }
            let file = file.ok_or("check: missing policy file")?;
            Ok(Command::Check {
                file,
                explain,
                jobs,
                full_saturation,
                certify,
            })
        }
        "unfold" => {
            let mut file = None;
            let mut user = None;
            let mut args = it.peekable();
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--user" => {
                        user = Some(args.next().ok_or("unfold: --user needs a value")?.clone())
                    }
                    _ if file.is_none() && !a.starts_with('-') => file = Some(a.clone()),
                    other => return Err(format!("unexpected argument `{other}`")),
                }
            }
            Ok(Command::Unfold {
                file: file.ok_or("unfold: missing policy file")?,
                user: user.ok_or("unfold: missing --user")?,
            })
        }
        "attack" => {
            let mut file = None;
            let mut steps = 2usize;
            let mut args = it.peekable();
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--steps" => {
                        steps = args
                            .next()
                            .ok_or("attack: --steps needs a value")?
                            .parse()
                            .map_err(|_| "attack: --steps must be a number")?;
                    }
                    _ if file.is_none() && !a.starts_with('-') => file = Some(a.clone()),
                    other => return Err(format!("unexpected argument `{other}`")),
                }
            }
            Ok(Command::Attack {
                file: file.ok_or("attack: missing policy file")?,
                steps,
            })
        }
        "fix" => {
            let file = it.next().ok_or("fix: missing policy file")?;
            Ok(Command::Fix { file: file.clone() })
        }
        "fmt" => {
            let file = it.next().ok_or("fmt: missing policy file")?;
            Ok(Command::Fmt { file: file.clone() })
        }
        other => Err(format!("unknown command `{other}` (try --help)")),
    }
}

/// Parse + type-check policy text (exposed for tests).
pub fn load_str(src: &str) -> Result<Schema, String> {
    let schema = parse_schema(src).map_err(|e| e.to_string())?;
    check_schema(&schema).map_err(|e| e.to_string())?;
    Ok(schema)
}

/// Run a command against policy *text*; returns (report, exit code).
pub fn run_on_source(cmd: &Command, src: &str) -> (String, i32) {
    match cmd {
        Command::Help => (USAGE.to_owned(), exit::OK),
        Command::Fmt { .. } => match load_str(src) {
            Ok(schema) => (schema.to_string(), exit::OK),
            Err(e) => (format!("error: {e}\n"), exit::INPUT),
        },
        Command::Check {
            explain,
            jobs,
            full_saturation,
            certify,
            ..
        } => match load_str(src) {
            Ok(schema) => check_report(&schema, *explain, *jobs, *full_saturation, *certify),
            Err(e) => (format!("error: {e}\n"), exit::INPUT),
        },
        Command::Unfold { user, .. } => match load_str(src) {
            Ok(schema) => unfold_report(&schema, user),
            Err(e) => (format!("error: {e}\n"), exit::INPUT),
        },
        Command::Attack { steps, .. } => match load_str(src) {
            Ok(schema) => attack_report(&schema, *steps),
            Err(e) => (format!("error: {e}\n"), exit::INPUT),
        },
        Command::Fix { .. } => match load_str(src) {
            Ok(schema) => fix_report(&schema),
            Err(e) => (format!("error: {e}\n"), exit::INPUT),
        },
    }
}

/// Run a command end-to-end (file IO included); returns (report, exit code).
pub fn run(cmd: &Command) -> (String, i32) {
    match cmd {
        Command::Help => (USAGE.to_owned(), 0),
        Command::Check { file, .. }
        | Command::Unfold { file, .. }
        | Command::Attack { file, .. }
        | Command::Fix { file }
        | Command::Fmt { file } => match std::fs::read_to_string(file) {
            Ok(src) => run_on_source(cmd, &src),
            Err(e) => (format!("error: cannot read `{file}`: {e}\n"), exit::INPUT),
        },
    }
}

/// Output of an instrumented run: the report (stdout), the observability
/// stream (stderr) and the exit code.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CliOutput {
    /// The command's report — byte-identical to the uninstrumented run.
    pub stdout: String,
    /// Trace lines and/or the metrics summary; empty when both are off.
    pub stderr: String,
    /// Process exit code.
    pub code: i32,
}

/// Everything collected while an instrumented command runs.
#[derive(Default)]
struct Collected {
    phases: Phases,
    closure: ClosureStats,
    program_nodes: u64,
    occurrences: u64,
    requirements: u64,
    trace: String,
}

impl Collected {
    fn record_to(&self, sink: &mut dyn MetricsSink) {
        self.phases.record_to(sink);
        if self.requirements > 0 {
            self.closure.record_to(sink);
            sink.counter("analysis.requirements", self.requirements);
            sink.counter("analysis.program_nodes", self.program_nodes);
            sink.counter("analysis.occurrences", self.occurrences);
        }
    }
}

/// Run a command against policy text with observability. When both
/// facilities are off this is exactly [`run_on_source`] with empty stderr;
/// otherwise stdout is still byte-identical and stderr carries the trace
/// lines and/or metrics summary.
pub fn run_on_source_with_obs(cmd: &Command, src: &str, obs: &ObsOptions) -> CliOutput {
    if obs.is_off() {
        let (stdout, code) = run_on_source(cmd, src);
        return CliOutput {
            stdout,
            stderr: String::new(),
            code,
        };
    }
    if matches!(cmd, Command::Help) {
        return CliOutput {
            stdout: USAGE.to_owned(),
            stderr: String::new(),
            code: 0,
        };
    }
    let mut col = Collected::default();
    let (stdout, code) = instrumented(cmd, src, obs.trace, &mut col);
    let mut stderr = std::mem::take(&mut col.trace);
    if let Some(format) = obs.metrics {
        let mut rec = Recorder::new();
        col.record_to(&mut rec);
        let report = rec.into_report();
        match format {
            MetricsFormat::Text => stderr.push_str(&report.render_table()),
            MetricsFormat::Json => stderr.push_str(&report.to_json().pretty()),
        }
    }
    CliOutput {
        stdout,
        stderr,
        code,
    }
}

/// Run a command end-to-end (file IO included) with observability.
pub fn run_with_obs(cmd: &Command, obs: &ObsOptions) -> CliOutput {
    match cmd {
        Command::Help => CliOutput {
            stdout: USAGE.to_owned(),
            stderr: String::new(),
            code: 0,
        },
        Command::Check { file, .. }
        | Command::Unfold { file, .. }
        | Command::Attack { file, .. }
        | Command::Fix { file }
        | Command::Fmt { file } => match std::fs::read_to_string(file) {
            Ok(src) => run_on_source_with_obs(cmd, &src, obs),
            Err(e) => CliOutput {
                stdout: format!("error: cannot read `{file}`: {e}\n"),
                stderr: String::new(),
                code: exit::INPUT,
            },
        },
    }
}

fn instrumented(cmd: &Command, src: &str, trace: bool, col: &mut Collected) -> (String, i32) {
    let schema = match col.phases.time("parse", || parse_schema(src)) {
        Ok(s) => s,
        Err(e) => return (format!("error: {e}\n"), exit::INPUT),
    };
    if let Err(e) = col.phases.time("typecheck", || check_schema(&schema)) {
        return (format!("error: {e}\n"), exit::INPUT);
    }
    match cmd {
        Command::Help => (USAGE.to_owned(), exit::OK),
        Command::Fmt { .. } => (schema.to_string(), exit::OK),
        Command::Check {
            explain,
            jobs,
            full_saturation,
            certify,
            ..
        } => check_report_instrumented(
            &schema,
            *explain,
            *jobs,
            *full_saturation,
            *certify,
            trace,
            col,
        ),
        Command::Unfold { user, .. } => col.phases.time("unfold", || unfold_report(&schema, user)),
        Command::Attack { steps, .. } => {
            col.phases.time("attack", || attack_report(&schema, *steps))
        }
        Command::Fix { .. } => col.phases.time("fix", || fix_report(&schema)),
    }
}

/// The process-wide closure cache behind plain `check` runs. Repeated
/// checks of the same policy (shell loops, watch modes, editor
/// integrations) skip unfolding and saturation entirely.
fn closure_cache() -> &'static ClosureCache {
    static CACHE: OnceLock<ClosureCache> = OnceLock::new();
    CACHE.get_or_init(ClosureCache::default)
}

/// Run the batch driver over every `require` of the policy. `--explain`
/// needs proof-carrying closures (and keeps them as artifacts so the
/// rendering reuses the group's closure instead of recomputing it per
/// requirement); the plain path runs the demand-driven engine through the
/// process-wide [`ClosureCache`]. `--full-saturation` forces the complete
/// closure (and bypasses the cache of partial ones). `--certify` forces
/// proof recording and kept artifacts — the proof checker needs the whole
/// derivation record — and also bypasses the cache, which holds proof-free
/// partial closures.
fn check_batch(
    schema: &Schema,
    explain: bool,
    jobs: usize,
    full_saturation: bool,
    certify: bool,
    stats: bool,
) -> BatchOutcome {
    let opts = BatchOptions {
        jobs,
        proofs: if explain || certify {
            ProofMode::Full
        } else {
            ProofMode::Off
        },
        keep_artifacts: explain || certify,
        collect_stats: stats,
        full_saturation,
    };
    let cache = (!explain && !certify && !stats && !full_saturation).then(closure_cache);
    analyze_batch_cached(
        schema,
        &schema.requirements,
        &AnalysisConfig::default(),
        &opts,
        cache,
    )
}

/// The `--certify` pass: run the independent proof checker over every
/// group's kept closure. Appends one summary line on success; on the first
/// rejection, reports the structured [`secflow::CheckError`] and returns
/// [`exit::CERTIFY`]. Returns the certificates so the instrumented path can
/// absorb the per-rule check counters into its metrics.
fn certify_outcome(
    outcome: &BatchOutcome,
    out: &mut String,
) -> Result<Vec<secflow::Certificate>, i32> {
    let mut certs = Vec::with_capacity(outcome.groups.len());
    let mut terms = 0usize;
    for g in &outcome.groups {
        let Some((prog, closure)) = g.artifacts.as_ref() else {
            // The shared phases failed; per-requirement errors were already
            // reported above, so there is nothing to certify here.
            continue;
        };
        match closure.certify(prog, &secflow::rules::RuleConfig::default()) {
            Ok(cert) => {
                terms += cert.terms_checked;
                certs.push(cert);
            }
            Err(e) => {
                let _ = writeln!(out, "certification FAILED for user `{}`: {e}", g.user);
                return Err(exit::CERTIFY);
            }
        }
    }
    let _ = writeln!(
        out,
        "certified: {terms} derivation(s) re-validated across {} closure(s)",
        certs.len()
    );
    Ok(certs)
}

/// Requirement index → group index, from a batch outcome.
fn group_of(outcome: &BatchOutcome, n_reqs: usize) -> Vec<usize> {
    let mut map = vec![0usize; n_reqs];
    for (gi, g) in outcome.groups.iter().enumerate() {
        for &i in &g.req_indexes {
            map[i] = gi;
        }
    }
    map
}

/// The `check` loop with stats: like [`check_report`] but the batch driver
/// collects per-group phase timings and closure counters, which aggregate
/// into the metrics report, and `--trace` appends a line per requirement
/// (shared unfold/closure timings are the group's; check time is the
/// requirement's own).
fn check_report_instrumented(
    schema: &Schema,
    explain: bool,
    jobs: usize,
    full_saturation: bool,
    certify: bool,
    trace: bool,
    col: &mut Collected,
) -> (String, i32) {
    let mut out = String::new();
    if schema.requirements.is_empty() {
        let _ = writeln!(
            out,
            "no `require` declarations in the policy — nothing to check"
        );
        return (out, exit::OK);
    }
    let outcome = check_batch(schema, explain, jobs, full_saturation, certify, true);
    let group_idx = group_of(&outcome, schema.requirements.len());
    for g in &outcome.groups {
        for (name, d) in g.stats.phases.iter() {
            col.phases.add(name, d);
        }
        col.closure.merge(&g.stats.closure);
        col.program_nodes = col.program_nodes.max(g.stats.program_nodes);
        col.occurrences += g.stats.occurrences_checked;
    }
    col.requirements = schema.requirements.len() as u64;
    let mut violated = 0usize;
    for (i, req) in schema.requirements.iter().enumerate() {
        let g = &outcome.groups[group_idx[i]];
        if trace {
            let ms =
                |d: Option<std::time::Duration>| d.map(|d| d.as_secs_f64() * 1e3).unwrap_or(0.0);
            let pos = g.req_indexes.iter().position(|&j| j == i);
            let _ = writeln!(
                col.trace,
                "trace: {req}: unfold {:.3} ms, closure {:.3} ms ({} terms, {} rounds), \
                 check {:.3} ms",
                ms(g.stats.phases.get("unfold")),
                ms(g.stats.phases.get("closure")),
                g.stats.closure.total_terms(),
                g.stats.closure.rounds,
                ms(pos.and_then(|p| g.check_times.get(p)).copied()),
            );
        }
        match &outcome.verdicts[i] {
            Ok(Verdict::Satisfied) => {
                let _ = writeln!(out, "ok    {req}");
            }
            Ok(Verdict::Violated(violations)) => {
                violated += 1;
                let _ = writeln!(out, "FLAW  {req}  ({} occurrence(s))", violations.len());
                if explain {
                    if let Some((prog, closure)) = g.artifacts.as_ref() {
                        render_explanations(prog, closure, violations, &mut out);
                    }
                }
            }
            Err(e) => {
                let _ = writeln!(out, "error {req}: {e}");
                return (out, exit::INPUT);
            }
        }
    }
    let _ = writeln!(
        out,
        "{} requirement(s), {} violated",
        schema.requirements.len(),
        violated
    );
    if certify {
        match certify_outcome(&outcome, &mut out) {
            Ok(certs) => {
                for cert in &certs {
                    col.closure.absorb_certificate(cert);
                }
            }
            Err(code) => return (out, code),
        }
    }
    (out, i32::from(violated > 0))
}

fn check_report(
    schema: &Schema,
    explain: bool,
    jobs: usize,
    full_saturation: bool,
    certify: bool,
) -> (String, i32) {
    let mut out = String::new();
    if schema.requirements.is_empty() {
        let _ = writeln!(
            out,
            "no `require` declarations in the policy — nothing to check"
        );
        return (out, exit::OK);
    }
    let outcome = check_batch(schema, explain, jobs, full_saturation, certify, false);
    let group_idx = group_of(&outcome, schema.requirements.len());
    let mut violated = 0usize;
    for (i, req) in schema.requirements.iter().enumerate() {
        match &outcome.verdicts[i] {
            Ok(Verdict::Satisfied) => {
                let _ = writeln!(out, "ok    {req}");
            }
            Ok(Verdict::Violated(violations)) => {
                violated += 1;
                let _ = writeln!(out, "FLAW  {req}  ({} occurrence(s))", violations.len());
                if explain {
                    if let Some((prog, closure)) = outcome.groups[group_idx[i]].artifacts.as_ref() {
                        render_explanations(prog, closure, violations, &mut out);
                    }
                }
            }
            Err(e) => {
                let _ = writeln!(out, "error {req}: {e}");
                return (out, exit::INPUT);
            }
        }
    }
    let _ = writeln!(
        out,
        "{} requirement(s), {} violated",
        schema.requirements.len(),
        violated
    );
    if certify {
        if let Err(code) = certify_outcome(&outcome, &mut out) {
            return (out, code);
        }
    }
    (out, i32::from(violated > 0))
}

/// Print Figure-1 style derivations for every witness of a violated
/// requirement (the `--explain` path), reusing the batch group's
/// proof-carrying program and closure.
fn render_explanations(
    prog: &NProgram,
    closure: &Closure,
    violations: &[secflow::Violation],
    out: &mut String,
) {
    for v in violations {
        for w in &v.witnesses {
            let _ = writeln!(out, "  witness {}", render_term(prog, w));
            let derivation = render_derivation(prog, closure, w);
            for line in derivation.lines() {
                let _ = writeln!(out, "    {line}");
            }
        }
    }
}

fn unfold_report(schema: &Schema, user: &str) -> (String, i32) {
    let Some(caps) = schema.user_str(user) else {
        return (format!("error: unknown user `{user}`\n"), exit::INPUT);
    };
    match NProgram::unfold(schema, caps) {
        Ok(prog) => {
            let mut out = String::new();
            let _ = writeln!(out, "S'(F) for {user} = {caps}:");
            for outer in &prog.outers {
                let _ = writeln!(out, "  {}: {}", outer.fn_ref, prog.render(outer.root));
            }
            let _ = writeln!(out, "{} numbered occurrences", prog.len());
            // Also list the occurrences of every required target for this
            // user, as orientation.
            for req in schema
                .requirements
                .iter()
                .filter(|r| r.user.as_str() == user)
            {
                let occ = occurrences(&prog, &req.target);
                let _ = writeln!(out, "occurrences of {}: {}", req.target, occ.len());
            }
            (out, 0)
        }
        Err(e) => (format!("error: {e}\n"), exit::INPUT),
    }
}

fn attack_report(schema: &Schema, steps: usize) -> (String, i32) {
    let mut out = String::new();
    if schema.requirements.is_empty() {
        let _ = writeln!(out, "no `require` declarations — nothing to attack");
        return (out, 0);
    }
    let cfg = AttackerConfig {
        strategies: StrategySpec {
            max_steps: steps,
            ..StrategySpec::default()
        },
        ..AttackerConfig::default()
    };
    let mut realised = 0usize;
    for req in &schema.requirements {
        match attack_requirement(schema, req, &cfg) {
            Ok(o) if o.achieved => {
                realised += 1;
                let _ = writeln!(
                    out,
                    "REALISED {req}\n  {}",
                    o.witness.map(|w| w.summary).unwrap_or_default()
                );
            }
            Ok(o) => {
                let _ = writeln!(
                    out,
                    "not realised {req}{}",
                    if o.skipped_shapes > 0 {
                        format!("  ({} shapes skipped by bounds)", o.skipped_shapes)
                    } else {
                        String::new()
                    }
                );
            }
            Err(e) => {
                let _ = writeln!(out, "error {req}: {e}");
            }
        }
    }
    let _ = writeln!(
        out,
        "{} requirement(s), {} realised within bounds",
        schema.requirements.len(),
        realised
    );
    (out, i32::from(realised > 0))
}

fn fix_report(schema: &Schema) -> (String, i32) {
    use secflow::advisor::{advise, Advice, AdvisorConfig};
    let mut out = String::new();
    if schema.requirements.is_empty() {
        let _ = writeln!(out, "no `require` declarations — nothing to fix");
        return (out, 0);
    }
    let mut flawed = 0usize;
    for req in &schema.requirements {
        match advise(schema, req, &AdvisorConfig::default()) {
            Ok(Advice::AlreadySatisfied) => {
                let _ = writeln!(out, "ok    {req}");
            }
            Ok(Advice::Repairs(repairs)) => {
                flawed += 1;
                let _ = writeln!(out, "FLAW  {req} — minimal repairs:");
                for r in repairs {
                    let _ = writeln!(out, "        {r}");
                }
            }
            Ok(Advice::BudgetExhausted(repairs)) => {
                flawed += 1;
                let _ = writeln!(
                    out,
                    "FLAW  {req} — search budget exhausted; repairs found so far:"
                );
                for r in repairs {
                    let _ = writeln!(out, "        {r}");
                }
            }
            Ok(Advice::Unrepairable) => {
                flawed += 1;
                let _ = writeln!(out, "FLAW  {req} — no revocation subset helps");
            }
            Err(e) => {
                let _ = writeln!(out, "error {req}: {e}");
                return (out, exit::INPUT);
            }
        }
    }
    (out, i32::from(flawed > 0))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The unit-threshold variant: the attack subcommand's probe domain is
    // {0,1,2}, which can bracket `salary` but not `10 * salary`.
    const POLICY: &str = r#"
        class Broker { salary: int, budget: int }
        fn checkBudget(b: Broker): bool { r_budget(b) >= r_salary(b) }
        user clerk { checkBudget, w_budget }
        user safe_clerk { checkBudget }
        require (clerk, r_salary(x) : ti)
        require (safe_clerk, r_salary(x) : ti)
    "#;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn arg_parsing() {
        assert_eq!(parse_args(&[]), Ok(Command::Help));
        assert_eq!(parse_args(&s(&["--help"])), Ok(Command::Help));
        assert_eq!(
            parse_args(&s(&["check", "p.sfl", "--explain"])),
            Ok(Command::Check {
                file: "p.sfl".into(),
                explain: true,
                jobs: 1,
                full_saturation: false,
                certify: false,
            })
        );
        assert_eq!(
            parse_args(&s(&["unfold", "p.sfl", "--user", "clerk"])),
            Ok(Command::Unfold {
                file: "p.sfl".into(),
                user: "clerk".into()
            })
        );
        assert_eq!(
            parse_args(&s(&["attack", "p.sfl", "--steps", "3"])),
            Ok(Command::Attack {
                file: "p.sfl".into(),
                steps: 3
            })
        );
        assert!(parse_args(&s(&["bogus"])).is_err());
        assert!(parse_args(&s(&["unfold", "p.sfl"])).is_err());
        assert!(parse_args(&s(&["attack", "p.sfl", "--steps", "x"])).is_err());
    }

    #[test]
    fn jobs_flag_parsing() {
        assert_eq!(
            parse_args(&s(&["check", "p.sfl", "--jobs", "4"])),
            Ok(Command::Check {
                file: "p.sfl".into(),
                explain: false,
                jobs: 4,
                full_saturation: false,
                certify: false,
            })
        );
        assert!(parse_args(&s(&["check", "p.sfl", "--jobs"])).is_err());
        assert!(parse_args(&s(&["check", "p.sfl", "--jobs", "x"])).is_err());
        assert!(parse_args(&s(&["check", "p.sfl", "--jobs", "0"])).is_err());
    }

    #[test]
    fn full_saturation_flag_parsing() {
        assert_eq!(
            parse_args(&s(&["check", "p.sfl", "--full-saturation"])),
            Ok(Command::Check {
                file: "p.sfl".into(),
                explain: false,
                jobs: 1,
                full_saturation: true,
                certify: false,
            })
        );
        // Unknown check flags mention the escape hatch.
        let err = parse_args(&s(&["check", "p.sfl", "--full"])).unwrap_err();
        assert!(err.contains("--full-saturation"), "{err}");
    }

    #[test]
    fn full_saturation_output_is_byte_identical() {
        let demand = Command::Check {
            file: "-".into(),
            explain: false,
            jobs: 1,
            full_saturation: false,
            certify: false,
        };
        let full = Command::Check {
            file: "-".into(),
            explain: false,
            jobs: 1,
            full_saturation: true,
            certify: false,
        };
        assert_eq!(
            run_on_source(&demand, POLICY),
            run_on_source(&full, POLICY),
            "--full-saturation must not change stdout or the exit code"
        );
    }

    #[test]
    fn explain_works_with_full_saturation() {
        let cmd = Command::Check {
            file: "-".into(),
            explain: true,
            jobs: 1,
            full_saturation: true,
            certify: false,
        };
        let (report, code) = run_on_source(&cmd, POLICY);
        assert_eq!(code, 1);
        assert!(report.contains("witness ti["));
        assert!(report.contains("(axiom for =)"));
    }

    #[test]
    fn repeated_checks_share_the_process_cache() {
        let cmd = Command::Check {
            file: "-".into(),
            explain: false,
            jobs: 1,
            full_saturation: false,
            certify: false,
        };
        let first = run_on_source(&cmd, POLICY);
        let hits_before = closure_cache().stats().hits;
        let second = run_on_source(&cmd, POLICY);
        assert_eq!(first, second);
        assert!(
            closure_cache().stats().hits > hits_before,
            "second identical check must be served from the cache"
        );
    }

    #[test]
    fn parallel_check_is_byte_identical() {
        let serial = Command::Check {
            file: "-".into(),
            explain: true,
            jobs: 1,
            full_saturation: false,
            certify: false,
        };
        let parallel = Command::Check {
            file: "-".into(),
            explain: true,
            jobs: 4,
            full_saturation: false,
            certify: false,
        };
        assert_eq!(
            run_on_source(&serial, POLICY),
            run_on_source(&parallel, POLICY),
            "--jobs must not change stdout or the exit code"
        );
        // Same under instrumentation (stderr timings differ, stdout not).
        let obs = ObsOptions {
            metrics: Some(MetricsFormat::Json),
            trace: true,
        };
        let a = run_on_source_with_obs(&serial, POLICY, &obs);
        let b = run_on_source_with_obs(&parallel, POLICY, &obs);
        assert_eq!(a.stdout, b.stdout);
        assert_eq!(a.code, b.code);
    }

    #[test]
    fn obs_flag_parsing() {
        let (cmd, obs) =
            parse_args_with_obs(&s(&["check", "p.sfl", "--metrics=json", "--trace"])).unwrap();
        assert_eq!(
            cmd,
            Command::Check {
                file: "p.sfl".into(),
                explain: false,
                jobs: 1,
                full_saturation: false,
                certify: false,
            }
        );
        assert_eq!(obs.metrics, Some(MetricsFormat::Json));
        assert!(obs.trace);

        let (_, obs) = parse_args_with_obs(&s(&["check", "p.sfl", "--metrics"])).unwrap();
        assert_eq!(obs.metrics, Some(MetricsFormat::Text));
        let (_, obs) = parse_args_with_obs(&s(&["check", "p.sfl", "--metrics=text"])).unwrap();
        assert_eq!(obs.metrics, Some(MetricsFormat::Text));

        // No obs flags: defaults off, plain parsing unchanged.
        let (cmd, obs) = parse_args_with_obs(&s(&["--help"])).unwrap();
        assert_eq!(cmd, Command::Help);
        assert!(obs.is_off());

        assert!(parse_args_with_obs(&s(&["check", "p.sfl", "--metrics=xml"])).is_err());
    }

    #[test]
    fn metrics_go_to_stderr_and_stdout_is_stable() {
        let cmd = Command::Check {
            file: "-".into(),
            explain: false,
            jobs: 1,
            full_saturation: false,
            certify: false,
        };
        let (plain, plain_code) = run_on_source(&cmd, POLICY);
        let out = run_on_source_with_obs(
            &cmd,
            POLICY,
            &ObsOptions {
                metrics: Some(MetricsFormat::Text),
                trace: true,
            },
        );
        assert_eq!(out.stdout, plain, "stdout must stay diff-stable");
        assert_eq!(out.code, plain_code);
        assert!(out.stderr.contains("trace: (clerk, r_salary(x):ti):"));
        assert!(out.stderr.contains("closure.terms.total"));
        assert!(out.stderr.contains("-- timings"));
        // Off = byte-identical with empty stderr.
        let off = run_on_source_with_obs(&cmd, POLICY, &ObsOptions::default());
        assert_eq!(off.stdout, plain);
        assert!(off.stderr.is_empty());
    }

    #[test]
    fn metrics_json_is_valid_and_complete() {
        use secflow_obs::Json;
        let cmd = Command::Check {
            file: "-".into(),
            explain: false,
            jobs: 1,
            full_saturation: false,
            certify: false,
        };
        let out = run_on_source_with_obs(
            &cmd,
            POLICY,
            &ObsOptions {
                metrics: Some(MetricsFormat::Json),
                trace: false,
            },
        );
        let doc = Json::parse(&out.stderr).expect("stderr is one valid JSON document");
        let counters = doc.get("counters").expect("counters object");
        // Per-capability term counts, rule firings, fixpoint rounds.
        assert!(
            counters
                .get("closure.terms.ti")
                .and_then(Json::as_u64)
                .unwrap()
                > 0
        );
        assert!(
            counters
                .get("closure.terms.eq")
                .and_then(Json::as_u64)
                .unwrap()
                > 0
        );
        assert!(
            counters
                .get("closure.rounds")
                .and_then(Json::as_u64)
                .unwrap()
                > 0
        );
        assert!(
            counters
                .get("closure.rule.axiom")
                .and_then(Json::as_u64)
                .unwrap()
                > 0
        );
        assert_eq!(
            counters.get("analysis.requirements").and_then(Json::as_u64),
            Some(2)
        );
        // Per-phase timings.
        let spans = doc.get("spans_ms").expect("spans object");
        for phase in ["parse", "typecheck", "unfold", "closure", "check"] {
            assert!(spans.get(phase).is_some(), "missing span {phase}");
        }
    }

    #[test]
    fn metrics_on_non_check_commands() {
        let cmd = Command::Unfold {
            file: "-".into(),
            user: "clerk".into(),
        };
        let (plain, _) = run_on_source(&cmd, POLICY);
        let out = run_on_source_with_obs(
            &cmd,
            POLICY,
            &ObsOptions {
                metrics: Some(MetricsFormat::Text),
                trace: false,
            },
        );
        assert_eq!(out.stdout, plain);
        assert!(out.stderr.contains("unfold"));
        // Parse errors still exit 3 with the metrics facility on.
        let bad = run_on_source_with_obs(
            &Command::Fmt { file: "-".into() },
            "class C { x: bogus_type }",
            &ObsOptions {
                metrics: Some(MetricsFormat::Text),
                trace: false,
            },
        );
        assert_eq!(bad.code, exit::INPUT);
        assert!(bad.stdout.contains("error"));
    }

    #[test]
    fn check_flags_the_flaw_and_exits_one() {
        let cmd = Command::Check {
            file: "-".into(),
            explain: false,
            jobs: 1,
            full_saturation: false,
            certify: false,
        };
        let (report, code) = run_on_source(&cmd, POLICY);
        assert_eq!(code, 1);
        assert!(report.contains("FLAW  (clerk, r_salary(x):ti)"));
        assert!(report.contains("ok    (safe_clerk, r_salary(x):ti)"));
        assert!(report.contains("2 requirement(s), 1 violated"));
    }

    #[test]
    fn check_explain_prints_a_derivation() {
        let cmd = Command::Check {
            file: "-".into(),
            explain: true,
            jobs: 1,
            full_saturation: false,
            certify: false,
        };
        let (report, code) = run_on_source(&cmd, POLICY);
        assert_eq!(code, 1);
        assert!(report.contains("witness ti["));
        assert!(report.contains("(axiom for =)"));
    }

    #[test]
    fn unfold_prints_numbered_program() {
        let cmd = Command::Unfold {
            file: "-".into(),
            user: "clerk".into(),
        };
        let (report, code) = run_on_source(&cmd, POLICY);
        assert_eq!(code, 0);
        assert!(report.contains("checkBudget: 5>="));
        assert!(report.contains("occurrences of r_salary: 1"));

        let cmd = Command::Unfold {
            file: "-".into(),
            user: "ghost".into(),
        };
        let (report, code) = run_on_source(&cmd, POLICY);
        assert_eq!(code, exit::INPUT);
        assert!(report.contains("unknown user"));
    }

    #[test]
    fn attack_realises_the_flaw() {
        // Total inference over unbounded integers needs bracketing probes:
        // two write+probe rounds, i.e. four steps.
        let cmd = Command::Attack {
            file: "-".into(),
            steps: 4,
        };
        let (report, code) = run_on_source(&cmd, POLICY);
        assert_eq!(code, 1);
        assert!(report.contains("REALISED (clerk, r_salary(x):ti)"));
        assert!(report.contains("not realised (safe_clerk, r_salary(x):ti)"));
    }

    #[test]
    fn fix_suggests_the_papers_repair() {
        let cmd = Command::Fix { file: "-".into() };
        let (report, code) = run_on_source(&cmd, POLICY);
        assert_eq!(code, 1);
        assert!(report.contains("FLAW  (clerk, r_salary(x):ti)"));
        assert!(report.contains("revoke {w_budget}"));
        assert!(report.contains("ok    (safe_clerk, r_salary(x):ti)"));
    }

    #[test]
    fn fmt_round_trips() {
        let cmd = Command::Fmt { file: "-".into() };
        let (report, code) = run_on_source(&cmd, POLICY);
        assert_eq!(code, 0);
        // The pretty-printed policy re-parses and re-checks.
        load_str(&report).unwrap();
    }

    #[test]
    fn input_errors_exit_three() {
        let cmd = Command::Check {
            file: "-".into(),
            explain: false,
            jobs: 1,
            full_saturation: false,
            certify: false,
        };
        let (report, code) = run_on_source(&cmd, "class C { x: bogus_type }");
        assert_eq!(code, exit::INPUT);
        assert!(report.contains("error"));
    }

    #[test]
    fn certify_flag_parsing() {
        assert_eq!(
            parse_args(&s(&["check", "p.sfl", "--certify"])),
            Ok(Command::Check {
                file: "p.sfl".into(),
                explain: false,
                jobs: 1,
                full_saturation: false,
                certify: true,
            })
        );
        // Unknown check flags mention --certify among the accepted set.
        let err = parse_args(&s(&["check", "p.sfl", "--certify-all"])).unwrap_err();
        assert!(err.contains("--certify"), "{err}");
    }

    #[test]
    fn certify_revalidates_and_appends_a_summary() {
        let plain = Command::Check {
            file: "-".into(),
            explain: false,
            jobs: 1,
            full_saturation: false,
            certify: false,
        };
        let certified = Command::Check {
            file: "-".into(),
            explain: false,
            jobs: 1,
            full_saturation: false,
            certify: true,
        };
        let (plain_out, plain_code) = run_on_source(&plain, POLICY);
        let (out, code) = run_on_source(&certified, POLICY);
        // Verdict lines and exit code are unchanged; one summary line is
        // appended.
        assert_eq!(code, plain_code);
        assert!(out.starts_with(&plain_out), "verdict lines must not change");
        assert!(
            out.contains("certified: ") && out.contains("across 2 closure(s)"),
            "missing certify summary: {out}"
        );
        // The instrumented path additionally surfaces per-rule check
        // counters in the metrics report.
        let obs = run_on_source_with_obs(
            &certified,
            POLICY,
            &ObsOptions {
                metrics: Some(MetricsFormat::Json),
                trace: false,
            },
        );
        assert_eq!(obs.stdout, out, "metrics must not change stdout");
        assert!(
            obs.stderr.contains("checker.rule.axiom"),
            "metrics missing checker counters: {}",
            obs.stderr
        );
    }

    #[test]
    fn corrupted_proofs_fail_certification_with_exit_four() {
        let schema = load_str(POLICY).unwrap();
        let mut outcome = check_batch(&schema, false, 1, false, true, false);
        // Corrupt one recorded derivation in the first group's closure: the
        // independent checker must reject it and the CLI must map that to
        // the dedicated exit code.
        let (_, closure) = outcome.groups[0].artifacts.as_mut().unwrap();
        let t = closure
            .iter()
            .find(|t| matches!(t, secflow::Term::Ta(_)))
            .expect("closure has a ta term");
        // `rule for =` can only conclude an equality, never a `ta` term.
        assert!(closure.replace_proof(&t, "rule for =", vec![]));
        let mut out = String::new();
        let code = match certify_outcome(&outcome, &mut out) {
            Ok(_) => panic!("corrupted outcome certified: {out}"),
            Err(code) => code,
        };
        assert_eq!(code, exit::CERTIFY);
        assert!(
            out.contains("certification FAILED for user "),
            "missing failure report: {out}"
        );
    }

    #[test]
    fn certify_composes_with_explain_and_jobs() {
        let cmd = Command::Check {
            file: "-".into(),
            explain: true,
            jobs: 4,
            full_saturation: true,
            certify: true,
        };
        let (out, code) = run_on_source(&cmd, POLICY);
        assert_eq!(code, exit::VIOLATION);
        assert!(out.contains("witness ti["));
        assert!(out.contains("certified: "));
    }
}
