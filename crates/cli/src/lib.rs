//! # secflow-cli
//!
//! The command-line front end. All behaviour lives here (unit-testable);
//! `main.rs` is a thin argument shim.
//!
//! ```text
//! secflow check  policy.sfl [--explain] [--certify] [--jobs N]
//!                                              # run every `require`
//! secflow audit  policy.sfl [--format=json]    # certified flaw-path report
//! secflow unfold policy.sfl --user clerk       # print S'(F)
//! secflow attack policy.sfl [--steps N]        # bounded concrete attacker
//! secflow fix    policy.sfl                    # minimal revocation repairs
//! secflow fmt    policy.sfl                    # parse + pretty-print
//! secflow serve  policy.sfl                    # resident NDJSON grant/revoke session
//! ```
//!
//! Every command also accepts `--metrics[=text|json]` (pipeline statistics
//! on stderr — phase timings, closure term/rule counters, fixpoint rounds,
//! cache hit/miss counters) and `--trace[=FILE]` / `--trace-format=...`
//! (structured span/instant events, JSON Lines or Chrome `trace_event`
//! format). Metrics write to **stderr** only; trace events go to the
//! `--trace=FILE` target, falling back to stderr only when `--metrics` is
//! off — the two never interleave, and stdout stays byte-identical and
//! diff-stable either way.
//!
//! Exit codes are distinct per outcome class (see [`exit`]):
//! 0 = all requirements satisfied, 1 = at least one violated,
//! 2 = command-line usage error, 3 = input error (unreadable file,
//! parse/type/analysis failure), 4 = `--certify`/`audit` rejected a
//! derivation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use oodb_lang::{check_schema, parse_schema, Schema};
use oodb_model::{FnRef, UserName};
use secflow::algorithm::{
    analyze_batch_cached, analyze_batch_streaming, occurrences, AnalysisConfig, AnalysisSink,
    BatchOptions, BatchOutcome, CacheStats, ClosureCache, GroupRecord,
};
use secflow::closure::{Closure, ProofMode};
use secflow::incremental::IncrementalUser;
use secflow::provenance::{audit_witness, render_path, ProvenanceOptions, Severity, WalkMode};
use secflow::report::{render_derivation, render_term, Verdict};
use secflow::stats::ClosureStats;
use secflow::unfold::NProgram;
use secflow_dynamic::attack_requirement;
use secflow_dynamic::strategy::StrategySpec;
use secflow_dynamic::AttackerConfig;
use secflow_obs::{Json, MetricsSink, Phases, Recorder, TraceBuffer, TraceFormat};
use std::fmt::Write as _;
use std::sync::OnceLock;

/// Process exit codes, one constant per outcome class. Scripts can rely on
/// these staying distinct: a missing input file (3) is distinguishable from
/// a policy violation (1) or a mistyped flag (2).
pub mod exit {
    /// Every requirement satisfied (or nothing to do).
    pub const OK: i32 = 0;
    /// At least one requirement violated / attack realised / repair needed.
    pub const VIOLATION: i32 = 1;
    /// Command-line usage error: unknown command, unknown flag, bad value.
    pub const USAGE: i32 = 2;
    /// Input error: unreadable policy file, parse or type errors, unknown
    /// user, or an analysis failure (e.g. the term budget aborting).
    pub const INPUT: i32 = 3;
    /// `--certify` found a recorded derivation the independent proof
    /// checker rejects.
    pub const CERTIFY: i32 = 4;
}

/// A parsed command line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// `check <file> [--explain] [--jobs N] [--stream] [--full-saturation]`
    Check {
        /// Policy file path.
        file: String,
        /// Print derivations for each violation.
        explain: bool,
        /// Worker threads for the batch analysis driver (1 = serial,
        /// 0 = auto-detect the machine parallelism).
        jobs: usize,
        /// Stream per-group verdict lines as groups complete instead of
        /// buffering the whole outcome — memory stays flat however many
        /// users the policy holds. Lines are tagged `[g<index>]` with the
        /// group's first-seen position; completion order is the pool's
        /// choice when `--jobs` exceeds 1.
        stream: bool,
        /// With `--stream`: emit each group record as one JSON object per
        /// line (NDJSON) instead of human-readable verdict lines, plus a
        /// final summary object. Machine-consumable streaming — schema
        /// pinned by `ndjson_stream_schema_is_pinned`.
        ndjson: bool,
        /// Saturate the full closure instead of the demand-driven slice.
        /// Verdicts and output are identical; this is the escape hatch for
        /// cross-checking the demand engine.
        full_saturation: bool,
        /// Re-validate every recorded derivation with the independent proof
        /// checker after analysis ([`Closure::certify`]); exit 4 if any
        /// derivation is rejected. Forces proof recording and full
        /// saturation.
        certify: bool,
    },
    /// `audit <file> [--format=text|json] [--severity=S] [--mode=M]
    /// [--max-depth N] [--max-paths N] [--jobs N]`
    Audit {
        /// Policy file path.
        file: String,
        /// Report rendering.
        format: AuditFormat,
        /// Drop flaw paths below this severity band (verdicts and the exit
        /// code are unaffected).
        severity: Option<Severity>,
        /// Walk direction/coverage for the path enumeration.
        mode: WalkMode,
        /// Maximum path length in proof-DAG edges.
        max_depth: usize,
        /// Enumeration cap per witness.
        max_paths: usize,
        /// Worker threads for the batch analysis driver (1 = serial).
        jobs: usize,
    },
    /// `unfold <file> --user <name>`
    Unfold {
        /// Policy file path.
        file: String,
        /// User whose capability list to unfold.
        user: String,
    },
    /// `attack <file> [--steps N]`
    Attack {
        /// Policy file path.
        file: String,
        /// Probe-sequence bound.
        steps: usize,
    },
    /// `fix <file>`
    Fix {
        /// Policy file path.
        file: String,
    },
    /// `fmt <file>`
    Fmt {
        /// Policy file path.
        file: String,
    },
    /// `serve <file>` — a long-lived resident session. Reads NDJSON
    /// requests (`check` / `grant` / `revoke` / `stats` / `shutdown`) from
    /// stdin and streams NDJSON responses — including per-requirement
    /// verdict *deltas* after each capability edit — to stdout. Edited
    /// users are maintained incrementally ([`secflow::IncrementalUser`]);
    /// un-edited users are answered through the process-wide
    /// [`ClosureCache`].
    Serve {
        /// Policy file path.
        file: String,
    },
    /// `--help` or no arguments.
    Help,
}

/// How to render metrics on stderr.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Human-readable summary table.
    #[default]
    Text,
    /// Machine-readable JSON document.
    Json,
}

/// How `secflow audit` renders its report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AuditFormat {
    /// Human-readable path listings.
    #[default]
    Text,
    /// The versioned `secflow.audit/1` JSON document.
    Json,
}

/// Where `--trace` events go and how they are encoded.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceOptions {
    /// `--trace=FILE`: write the encoded events here. `None` (bare
    /// `--trace`) falls back to stderr — but only when `--metrics` is off,
    /// so the two streams never interleave.
    pub file: Option<String>,
    /// `--trace-format=jsonl|chrome`.
    pub format: TraceFormat,
}

/// The observability flags, orthogonal to the command: `--metrics[=…]`,
/// `--trace[=FILE]` and `--trace-format=…`. Metrics emit to stderr only;
/// trace events go to the `--trace=FILE` target (stderr only as the
/// metrics-off fallback). stdout stays diff-stable in every combination.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObsOptions {
    /// Emit a pipeline metrics summary after the command.
    pub metrics: Option<MetricsFormat>,
    /// Emit structured span/instant trace events.
    pub trace: Option<TraceOptions>,
}

impl ObsOptions {
    /// Are both facilities off (the plain, uninstrumented path)?
    pub fn is_off(&self) -> bool {
        self.metrics.is_none() && self.trace.is_none()
    }
}

/// Usage text.
pub const USAGE: &str = "\
secflow — static detection of security flaws in object-oriented databases
         (Tajima, SIGMOD 1996)

USAGE:
  secflow check  <policy-file> [--explain] [--certify] [--jobs N] [--stream]
                               [--format=text|ndjson] [--full-saturation]
                                             run every `require`; exit 1 on flaws
                                             (--jobs fans user groups across N threads
                                             under a work-stealing scheduler; N defaults
                                             to 1, and --jobs 0 auto-detects the machine
                                             parallelism; --stream prints each group's
                                             verdict lines as the group completes,
                                             tagged [g<index>] with its first-seen
                                             position, keeping memory flat however many
                                             users the policy holds — incompatible with
                                             --explain/--certify, which buffer per-group
                                             artifacts; --stream --format=ndjson emits
                                             one compact JSON object per group record
                                             plus a final summary object instead of
                                             text lines; --full-saturation disables the
                                             demand-driven engine and computes the
                                             complete closure — verdicts are identical
                                             either way; --certify re-validates every
                                             recorded derivation with the independent
                                             proof checker and exits 4 on any rejection)
  secflow audit  <policy-file> [--format=text|json] [--severity=low|medium|high|critical]
                               [--mode=backward|forward|complete]
                               [--max-depth N] [--max-paths N] [--jobs N]
                                             run check + certify, then walk every
                                             violation's proof DAG and report the
                                             flaw paths from capability axioms
                                             (sources) to the violated requirement
                                             (sink), severity-scored; --format=json
                                             emits the versioned secflow.audit/1
                                             report; --severity filters paths below
                                             the band (verdicts and exit codes are
                                             unchanged)
  secflow unfold <policy-file> --user <u>    print the numbered unfolding S'(F)
  secflow attack <policy-file> [--steps N]   try to realise each flaw concretely
  secflow fix    <policy-file>               suggest minimal revocations per flaw
  secflow fmt    <policy-file>               parse and pretty-print the policy
  secflow serve  <policy-file>               resident incremental session: read one
                                             NDJSON request per stdin line —
                                             {\"op\":\"check\",\"user\":U},
                                             {\"op\":\"grant\"|\"revoke\",\"user\":U,\"fn\":F},
                                             {\"op\":\"stats\"}, {\"op\":\"shutdown\"} —
                                             and stream NDJSON responses; grant/revoke
                                             maintain the edited user's closure
                                             incrementally (proof-guided retraction +
                                             warm restart) and report only the verdicts
                                             that *changed*; malformed requests get an
                                             {\"error\":…} record and the session
                                             continues; exit 0 on shutdown/EOF

OBSERVABILITY (any command; stdout is unchanged):
  --metrics[=text|json]   pipeline statistics on stderr: per-phase timings,
                          closure term counts per capability kind, rule
                          firings, fixpoint rounds, worklist peak, dedup
                          rate, closure-cache hits/misses/evictions/
                          occupancy/shards, batch work-steal counts
  --trace[=FILE]          structured span/instant trace events (closure
                          phases, per-rule firings, cache hits) with
                          monotonic timestamps; written to FILE, or to
                          stderr only when --metrics is off (the streams
                          never interleave — with --metrics on and no FILE,
                          events are dropped)
  --trace-format=jsonl|chrome
                          event encoding: JSON Lines (default) or Chrome
                          trace_event JSON, loadable in Perfetto /
                          about://tracing

EXIT CODES (distinct per outcome class, stable for scripting):
  0   every requirement satisfied (or nothing to do)
  1   at least one requirement violated / attack realised / repair needed
  2   command-line usage error (unknown command or flag, bad value)
  3   input error: unreadable file, parse/type error, analysis failure
  4   --certify or audit rejected a recorded derivation

POLICY FILES contain class, fn, user and require declarations:

  class Broker { name: string, salary: int, budget: int }
  fn checkBudget(b: Broker): bool { r_budget(b) >= 10 * r_salary(b) }
  user clerk { checkBudget, w_budget }
  require (clerk, r_salary(x) : ti)
";

/// Parse a command line including the observability flags. `--metrics`,
/// `--metrics=text|json`, `--trace`, `--trace=FILE` and
/// `--trace-format=jsonl|chrome` are accepted anywhere on the line;
/// everything else goes through [`parse_args`].
pub fn parse_args_with_obs(args: &[String]) -> Result<(Command, ObsOptions), String> {
    let mut obs = ObsOptions::default();
    let mut trace_on = false;
    let mut trace_file: Option<String> = None;
    let mut trace_format: Option<TraceFormat> = None;
    let mut rest = Vec::with_capacity(args.len());
    for a in args {
        match a.as_str() {
            "--metrics" | "--metrics=text" => obs.metrics = Some(MetricsFormat::Text),
            "--metrics=json" => obs.metrics = Some(MetricsFormat::Json),
            "--trace" => trace_on = true,
            other if other.starts_with("--metrics=") => {
                let fmt = &other["--metrics=".len()..];
                return Err(format!("unknown metrics format `{fmt}` (use text or json)"));
            }
            other if other.starts_with("--trace-format=") => {
                let fmt = &other["--trace-format=".len()..];
                trace_format = Some(TraceFormat::parse(fmt).ok_or_else(|| {
                    format!("unknown trace format `{fmt}` (use jsonl or chrome)")
                })?);
            }
            other if other.starts_with("--trace=") => {
                let file = &other["--trace=".len()..];
                if file.is_empty() {
                    return Err("--trace= needs a file path (or use bare --trace)".into());
                }
                trace_on = true;
                trace_file = Some(file.to_owned());
            }
            _ => rest.push(a.clone()),
        }
    }
    if trace_on {
        obs.trace = Some(TraceOptions {
            file: trace_file,
            format: trace_format.unwrap_or_default(),
        });
    } else if trace_format.is_some() {
        return Err("--trace-format requires --trace or --trace=FILE".into());
    }
    Ok((parse_args(&rest)?, obs))
}

/// Parse a command line (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "-h" | "--help" | "help" => Ok(Command::Help),
        "check" => {
            let mut file = None;
            let mut explain = false;
            let mut jobs = 1usize;
            let mut stream = false;
            let mut ndjson = false;
            let mut full_saturation = false;
            let mut certify = false;
            let mut args = it.peekable();
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--explain" => explain = true,
                    "--stream" => stream = true,
                    "--format=ndjson" => ndjson = true,
                    "--format=text" => ndjson = false,
                    "--full-saturation" => full_saturation = true,
                    "--certify" => certify = true,
                    "--jobs" => {
                        // 0 is meaningful: auto-detect the machine
                        // parallelism (std::thread::available_parallelism).
                        jobs = args
                            .next()
                            .ok_or("check: --jobs needs a value")?
                            .parse()
                            .map_err(|_| "check: --jobs must be a number")?;
                    }
                    _ if file.is_none() && !a.starts_with('-') => file = Some(a.clone()),
                    other => {
                        return Err(format!(
                            "unexpected argument `{other}` (check accepts --explain, \
                             --certify, --jobs N, --stream, --format=text|ndjson, \
                             --full-saturation)"
                        ))
                    }
                }
            }
            if stream && (explain || certify) {
                return Err(
                    "check: --stream cannot be combined with --explain or --certify \
                     (both need buffered per-group artifacts)"
                        .into(),
                );
            }
            if ndjson && !stream {
                return Err(
                    "check: --format=ndjson requires --stream (it is the streaming \
                     record format)"
                        .into(),
                );
            }
            let file = file.ok_or("check: missing policy file")?;
            Ok(Command::Check {
                file,
                explain,
                jobs,
                stream,
                ndjson,
                full_saturation,
                certify,
            })
        }
        "audit" => {
            let mut file = None;
            let mut format = AuditFormat::default();
            let mut severity = None;
            let mut mode = WalkMode::default();
            let defaults = ProvenanceOptions::default();
            let mut max_depth = defaults.max_depth;
            let mut max_paths = defaults.max_paths;
            let mut jobs = 1usize;
            let mut args = it.peekable();
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--format=text" => format = AuditFormat::Text,
                    "--format=json" => format = AuditFormat::Json,
                    "--max-depth" => {
                        max_depth = args
                            .next()
                            .ok_or("audit: --max-depth needs a value")?
                            .parse()
                            .map_err(|_| "audit: --max-depth must be a number")?;
                        if max_depth == 0 {
                            return Err("audit: --max-depth must be at least 1".into());
                        }
                    }
                    "--max-paths" => {
                        max_paths = args
                            .next()
                            .ok_or("audit: --max-paths needs a value")?
                            .parse()
                            .map_err(|_| "audit: --max-paths must be a number")?;
                        if max_paths == 0 {
                            return Err("audit: --max-paths must be at least 1".into());
                        }
                    }
                    "--jobs" => {
                        jobs = args
                            .next()
                            .ok_or("audit: --jobs needs a value")?
                            .parse()
                            .map_err(|_| "audit: --jobs must be a number")?;
                        if jobs == 0 {
                            return Err("audit: --jobs must be at least 1".into());
                        }
                    }
                    other if other.starts_with("--severity=") => {
                        let s = &other["--severity=".len()..];
                        severity = Some(Severity::parse(s).ok_or_else(|| {
                            format!(
                                "audit: unknown severity `{s}` (use low, medium, high or critical)"
                            )
                        })?);
                    }
                    other if other.starts_with("--mode=") => {
                        let m = &other["--mode=".len()..];
                        mode = WalkMode::parse(m).ok_or_else(|| {
                            format!("audit: unknown mode `{m}` (use backward, forward or complete)")
                        })?;
                    }
                    other if other.starts_with("--format=") => {
                        let f = &other["--format=".len()..];
                        return Err(format!("audit: unknown format `{f}` (use text or json)"));
                    }
                    _ if file.is_none() && !a.starts_with('-') => file = Some(a.clone()),
                    other => {
                        return Err(format!(
                            "unexpected argument `{other}` (audit accepts --format=text|json, \
                             --severity=S, --mode=M, --max-depth N, --max-paths N, --jobs N)"
                        ))
                    }
                }
            }
            Ok(Command::Audit {
                file: file.ok_or("audit: missing policy file")?,
                format,
                severity,
                mode,
                max_depth,
                max_paths,
                jobs,
            })
        }
        "unfold" => {
            let mut file = None;
            let mut user = None;
            let mut args = it.peekable();
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--user" => {
                        user = Some(args.next().ok_or("unfold: --user needs a value")?.clone())
                    }
                    _ if file.is_none() && !a.starts_with('-') => file = Some(a.clone()),
                    other => return Err(format!("unexpected argument `{other}`")),
                }
            }
            Ok(Command::Unfold {
                file: file.ok_or("unfold: missing policy file")?,
                user: user.ok_or("unfold: missing --user")?,
            })
        }
        "attack" => {
            let mut file = None;
            let mut steps = 2usize;
            let mut args = it.peekable();
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--steps" => {
                        steps = args
                            .next()
                            .ok_or("attack: --steps needs a value")?
                            .parse()
                            .map_err(|_| "attack: --steps must be a number")?;
                    }
                    _ if file.is_none() && !a.starts_with('-') => file = Some(a.clone()),
                    other => return Err(format!("unexpected argument `{other}`")),
                }
            }
            Ok(Command::Attack {
                file: file.ok_or("attack: missing policy file")?,
                steps,
            })
        }
        "fix" => {
            let file = it.next().ok_or("fix: missing policy file")?;
            Ok(Command::Fix { file: file.clone() })
        }
        "fmt" => {
            let file = it.next().ok_or("fmt: missing policy file")?;
            Ok(Command::Fmt { file: file.clone() })
        }
        "serve" => {
            let mut file = None;
            for a in it {
                match a.as_str() {
                    _ if file.is_none() && !a.starts_with('-') => file = Some(a.clone()),
                    other => {
                        return Err(format!(
                            "unexpected argument `{other}` (serve takes only the policy file; \
                             the session is driven by NDJSON requests on stdin)"
                        ))
                    }
                }
            }
            Ok(Command::Serve {
                file: file.ok_or("serve: missing policy file")?,
            })
        }
        other => Err(format!("unknown command `{other}` (try --help)")),
    }
}

/// Parse + type-check policy text (exposed for tests).
pub fn load_str(src: &str) -> Result<Schema, String> {
    let schema = parse_schema(src).map_err(|e| e.to_string())?;
    check_schema(&schema).map_err(|e| e.to_string())?;
    Ok(schema)
}

/// Run a command against policy *text*; returns (report, exit code).
pub fn run_on_source(cmd: &Command, src: &str) -> (String, i32) {
    match cmd {
        Command::Help => (USAGE.to_owned(), exit::OK),
        Command::Fmt { .. } => match load_str(src) {
            Ok(schema) => (schema.to_string(), exit::OK),
            Err(e) => (format!("error: {e}\n"), exit::INPUT),
        },
        Command::Check {
            explain,
            jobs,
            stream,
            ndjson,
            full_saturation,
            certify,
            ..
        } => match load_str(src) {
            Ok(schema) => {
                if *stream {
                    check_report_stream(&schema, *jobs, *full_saturation, *ndjson, None)
                } else {
                    check_report(&schema, *explain, *jobs, *full_saturation, *certify)
                }
            }
            Err(e) => (format!("error: {e}\n"), exit::INPUT),
        },
        Command::Audit {
            file,
            format,
            severity,
            mode,
            max_depth,
            max_paths,
            jobs,
        } => match load_str(src) {
            Ok(schema) => {
                let opts = AuditOptions {
                    policy: file.clone(),
                    format: *format,
                    severity: *severity,
                    provenance: ProvenanceOptions {
                        max_depth: *max_depth,
                        max_paths: *max_paths,
                        mode: *mode,
                    },
                };
                let outcome = audit_batch(&schema, *jobs);
                render_audit(&schema, &outcome, &opts)
            }
            Err(e) => (format!("error: {e}\n"), exit::INPUT),
        },
        Command::Unfold { user, .. } => match load_str(src) {
            Ok(schema) => unfold_report(&schema, user),
            Err(e) => (format!("error: {e}\n"), exit::INPUT),
        },
        Command::Attack { steps, .. } => match load_str(src) {
            Ok(schema) => attack_report(&schema, *steps),
            Err(e) => (format!("error: {e}\n"), exit::INPUT),
        },
        Command::Fix { .. } => match load_str(src) {
            Ok(schema) => fix_report(&schema),
            Err(e) => (format!("error: {e}\n"), exit::INPUT),
        },
        Command::Serve { .. } => match load_str(src) {
            Ok(schema) => serve_stdin(&schema),
            Err(e) => (format!("error: {e}\n"), exit::INPUT),
        },
    }
}

/// Run a command end-to-end (file IO included); returns (report, exit code).
pub fn run(cmd: &Command) -> (String, i32) {
    match cmd {
        Command::Help => (USAGE.to_owned(), 0),
        Command::Check { file, .. }
        | Command::Audit { file, .. }
        | Command::Unfold { file, .. }
        | Command::Attack { file, .. }
        | Command::Fix { file }
        | Command::Fmt { file }
        | Command::Serve { file } => match std::fs::read_to_string(file) {
            Ok(src) => run_on_source(cmd, &src),
            Err(e) => (format!("error: cannot read `{file}`: {e}\n"), exit::INPUT),
        },
    }
}

/// Output of an instrumented run: the report (stdout), the observability
/// stream (stderr), the encoded trace document (when `--trace=FILE` was
/// given — the caller writes it) and the exit code.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CliOutput {
    /// The command's report — byte-identical to the uninstrumented run.
    pub stdout: String,
    /// The metrics summary and/or (only when `--metrics` is off) the
    /// encoded trace events; empty when both facilities are off.
    pub stderr: String,
    /// The encoded trace document destined for the `--trace=FILE` target;
    /// `None` unless a trace file was requested.
    pub trace_output: Option<String>,
    /// Process exit code.
    pub code: i32,
}

/// Per-group data captured for the trace timeline: the group's phase
/// durations, closure counters and per-requirement check spans.
#[derive(Default)]
struct GroupTrace {
    user: String,
    phases: Phases,
    terms: u64,
    rounds: u64,
    firings: Vec<(&'static str, u64)>,
    checks: Vec<(String, std::time::Duration)>,
}

/// Closure-cache state captured for metrics/trace: the counters plus the
/// lock-striping layout of the cache that served (or would serve) the run.
struct CacheSnapshot {
    stats: CacheStats,
    len: usize,
    capacity: usize,
    shards: usize,
    max_shard_len: usize,
}

/// Everything collected while an instrumented command runs.
#[derive(Default)]
struct Collected {
    phases: Phases,
    closure: ClosureStats,
    program_nodes: u64,
    occurrences: u64,
    requirements: u64,
    steals: u64,
    cache: Option<CacheSnapshot>,
    groups: Vec<GroupTrace>,
}

impl Collected {
    fn record_to(&self, sink: &mut dyn MetricsSink) {
        self.phases.record_to(sink);
        if self.requirements > 0 {
            self.closure.record_to(sink);
            sink.counter("analysis.requirements", self.requirements);
            sink.counter("analysis.program_nodes", self.program_nodes);
            sink.counter("analysis.occurrences", self.occurrences);
            sink.counter("batch.steals", self.steals);
        }
        if let Some(c) = &self.cache {
            sink.counter("cache.hits", c.stats.hits);
            sink.counter("cache.misses", c.stats.misses);
            sink.counter("cache.union_recomputes", c.stats.union_recomputes);
            sink.counter("cache.evictions", c.stats.evictions);
            sink.counter("cache.shard.count", c.shards as u64);
            sink.gauge("cache.shard.max_len", c.max_shard_len as f64);
            sink.gauge("cache.occupancy", c.len as f64);
            sink.gauge("cache.capacity", c.capacity as f64);
        }
    }

    /// Synthesise the trace timeline from the collected durations: the
    /// driver phases on lane 0, each batch group on its own lane (so
    /// parallel groups render as parallel tracks in Perfetto), closure
    /// spans annotated with term/round counters and per-rule firings,
    /// cache state as an instant event.
    fn build_trace(&self) -> TraceBuffer {
        let mut tb = TraceBuffer::new();
        let us = |d: std::time::Duration| d;
        let mut cursor = 0u64;
        let mut group_start = 0u64;
        for (name, d) in self.phases.iter() {
            tb.span(name, "phase", 0, cursor, us(d), vec![]);
            cursor += d.as_micros() as u64;
            if name == "typecheck" {
                group_start = cursor;
            }
        }
        for (gi, g) in self.groups.iter().enumerate() {
            let tid = gi as u64 + 1;
            let mut t = group_start;
            let mut served_from_cache = true;
            for (name, d) in g.phases.iter() {
                if name == "unfold" {
                    served_from_cache = false;
                }
                let mut args = vec![("user".to_owned(), Json::str(&g.user))];
                if name == "closure" {
                    args.push(("terms".to_owned(), Json::count(g.terms)));
                    args.push(("rounds".to_owned(), Json::count(g.rounds)));
                    for (rule, n) in &g.firings {
                        args.push((format!("rule.{rule}"), Json::count(*n)));
                    }
                }
                tb.span(name, "group", tid, t, us(d), args);
                t += d.as_micros() as u64;
            }
            if served_from_cache {
                tb.instant(
                    "cache.hit",
                    "cache",
                    tid,
                    group_start,
                    vec![("user".to_owned(), Json::str(&g.user))],
                );
            }
            for (req, d) in &g.checks {
                tb.span(
                    "check",
                    "requirement",
                    tid,
                    t,
                    us(*d),
                    vec![("requirement".to_owned(), Json::str(req))],
                );
                t += d.as_micros() as u64;
            }
        }
        if let Some(c) = &self.cache {
            tb.instant(
                "cache",
                "cache",
                0,
                cursor,
                vec![
                    ("hits".to_owned(), Json::count(c.stats.hits)),
                    ("misses".to_owned(), Json::count(c.stats.misses)),
                    (
                        "union_recomputes".to_owned(),
                        Json::count(c.stats.union_recomputes),
                    ),
                    ("evictions".to_owned(), Json::count(c.stats.evictions)),
                    ("shards".to_owned(), Json::count(c.shards as u64)),
                    ("occupancy".to_owned(), Json::count(c.len as u64)),
                    ("capacity".to_owned(), Json::count(c.capacity as u64)),
                ],
            );
        }
        tb
    }
}

/// Run a command against policy text with observability. When both
/// facilities are off this is exactly [`run_on_source`] with empty stderr;
/// otherwise stdout is still byte-identical, stderr carries the metrics
/// summary (and the encoded trace only when `--metrics` is off), and
/// [`CliOutput::trace_output`] carries the trace document destined for the
/// `--trace=FILE` target.
pub fn run_on_source_with_obs(cmd: &Command, src: &str, obs: &ObsOptions) -> CliOutput {
    if obs.is_off() {
        let (stdout, code) = run_on_source(cmd, src);
        return CliOutput {
            stdout,
            code,
            ..CliOutput::default()
        };
    }
    if matches!(cmd, Command::Help) {
        return CliOutput {
            stdout: USAGE.to_owned(),
            ..CliOutput::default()
        };
    }
    let mut col = Collected::default();
    let (stdout, code) = instrumented(cmd, src, &mut col);
    let mut stderr = String::new();
    let mut trace_output = None;
    if let Some(trace) = &obs.trace {
        let encoded = col.build_trace().encode(trace.format);
        if trace.file.is_some() {
            trace_output = Some(encoded);
        } else if obs.metrics.is_none() {
            // Bare --trace without --metrics: stderr is free, use it.
            stderr.push_str(&encoded);
        }
        // With --metrics on and no file target the events are dropped:
        // the two streams must never interleave on stderr.
    }
    if let Some(format) = obs.metrics {
        let mut rec = Recorder::new();
        col.record_to(&mut rec);
        let report = rec.into_report();
        match format {
            MetricsFormat::Text => stderr.push_str(&report.render_table()),
            MetricsFormat::Json => stderr.push_str(&report.to_json().pretty()),
        }
    }
    CliOutput {
        stdout,
        stderr,
        trace_output,
        code,
    }
}

/// Run a command end-to-end with observability: file IO included, and the
/// `--trace=FILE` document written to its target.
pub fn run_with_obs(cmd: &Command, obs: &ObsOptions) -> CliOutput {
    match cmd {
        Command::Help => CliOutput {
            stdout: USAGE.to_owned(),
            ..CliOutput::default()
        },
        Command::Check { file, .. }
        | Command::Audit { file, .. }
        | Command::Unfold { file, .. }
        | Command::Attack { file, .. }
        | Command::Fix { file }
        | Command::Fmt { file }
        | Command::Serve { file } => match std::fs::read_to_string(file) {
            Ok(src) => {
                let mut out = run_on_source_with_obs(cmd, &src, obs);
                if let (Some(trace), Some(doc)) = (&obs.trace, &out.trace_output) {
                    if let Some(path) = &trace.file {
                        if let Err(e) = std::fs::write(path, doc) {
                            let _ =
                                writeln!(out.stderr, "error: cannot write trace to `{path}`: {e}");
                        }
                    }
                }
                out
            }
            Err(e) => CliOutput {
                stdout: format!("error: cannot read `{file}`: {e}\n"),
                code: exit::INPUT,
                ..CliOutput::default()
            },
        },
    }
}

fn instrumented(cmd: &Command, src: &str, col: &mut Collected) -> (String, i32) {
    let schema = match col.phases.time("parse", || parse_schema(src)) {
        Ok(s) => s,
        Err(e) => return (format!("error: {e}\n"), exit::INPUT),
    };
    if let Err(e) = col.phases.time("typecheck", || check_schema(&schema)) {
        return (format!("error: {e}\n"), exit::INPUT);
    }
    match cmd {
        Command::Help => (USAGE.to_owned(), exit::OK),
        Command::Fmt { .. } => (schema.to_string(), exit::OK),
        Command::Check {
            explain,
            jobs,
            stream,
            ndjson,
            full_saturation,
            certify,
            ..
        } => {
            if *stream {
                check_report_stream(&schema, *jobs, *full_saturation, *ndjson, Some(col))
            } else {
                check_report_instrumented(&schema, *explain, *jobs, *full_saturation, *certify, col)
            }
        }
        Command::Audit {
            file,
            format,
            severity,
            mode,
            max_depth,
            max_paths,
            jobs,
        } => {
            let opts = AuditOptions {
                policy: file.clone(),
                format: *format,
                severity: *severity,
                provenance: ProvenanceOptions {
                    max_depth: *max_depth,
                    max_paths: *max_paths,
                    mode: *mode,
                },
            };
            let outcome = audit_batch(&schema, *jobs);
            collect_batch(&schema, &outcome, col);
            col.phases
                .time("audit", || render_audit(&schema, &outcome, &opts))
        }
        Command::Unfold { user, .. } => col.phases.time("unfold", || unfold_report(&schema, user)),
        Command::Attack { steps, .. } => {
            col.phases.time("attack", || attack_report(&schema, *steps))
        }
        Command::Fix { .. } => col.phases.time("fix", || fix_report(&schema)),
        Command::Serve { .. } => col.phases.time("serve", || serve_stdin(&schema)),
    }
}

/// Fold a stats-collecting [`BatchOutcome`] into the metrics/trace
/// collector: aggregate phases and closure counters, capture per-group
/// timelines, and surface the closure-cache state (the batch's own cache
/// when one was used, the process-wide cache otherwise).
fn collect_batch(schema: &Schema, outcome: &BatchOutcome, col: &mut Collected) {
    for g in &outcome.groups {
        for (name, d) in g.stats.phases.iter() {
            col.phases.add(name, d);
        }
        col.closure.merge(&g.stats.closure);
        col.program_nodes = col.program_nodes.max(g.stats.program_nodes);
        col.occurrences += g.stats.occurrences_checked;
        col.groups.push(GroupTrace {
            user: g.user.to_string(),
            phases: g.stats.phases.clone(),
            terms: g.stats.closure.total_terms(),
            rounds: g.stats.closure.rounds,
            firings: g.stats.closure.firings.clone(),
            checks: g
                .req_indexes
                .iter()
                .zip(&g.check_times)
                .map(|(&i, d)| (schema.requirements[i].to_string(), *d))
                .collect(),
        });
    }
    col.requirements = schema.requirements.len() as u64;
    col.steals = outcome.steals;
    col.cache = Some(cache_snapshot(outcome.cache_stats, outcome.cache_occupancy));
}

/// Build a [`CacheSnapshot`] from a batch's recorded cache state, falling
/// back to the process-wide cache for uncached runs (instrumented batches
/// bypass the cache). The shard layout always comes from the process-wide
/// cache — it is the one every cached `check` run stripes over.
fn cache_snapshot(stats: Option<CacheStats>, occupancy: Option<(usize, usize)>) -> CacheSnapshot {
    let cache = closure_cache();
    let (stats, len, capacity) = match (stats, occupancy) {
        (Some(stats), Some((len, capacity))) => (stats, len, capacity),
        _ => (cache.stats(), cache.len(), cache.capacity()),
    };
    CacheSnapshot {
        stats,
        len,
        capacity,
        shards: cache.shard_count(),
        max_shard_len: cache.max_shard_len(),
    }
}

/// The process-wide closure cache behind plain `check` runs. Repeated
/// checks of the same policy (shell loops, watch modes, editor
/// integrations) skip unfolding and saturation entirely.
fn closure_cache() -> &'static ClosureCache {
    static CACHE: OnceLock<ClosureCache> = OnceLock::new();
    CACHE.get_or_init(ClosureCache::default)
}

/// Run the batch driver over every `require` of the policy. `--explain`
/// needs proof-carrying closures (and keeps them as artifacts so the
/// rendering reuses the group's closure instead of recomputing it per
/// requirement); the plain path runs the demand-driven engine through the
/// process-wide [`ClosureCache`]. `--full-saturation` forces the complete
/// closure (and bypasses the cache of partial ones). `--certify` forces
/// proof recording and kept artifacts — the proof checker needs the whole
/// derivation record — and also bypasses the cache, which holds proof-free
/// partial closures.
fn check_batch(
    schema: &Schema,
    explain: bool,
    jobs: usize,
    full_saturation: bool,
    certify: bool,
    stats: bool,
) -> BatchOutcome {
    let opts = BatchOptions {
        jobs,
        proofs: if explain || certify {
            ProofMode::Full
        } else {
            ProofMode::Off
        },
        keep_artifacts: explain || certify,
        collect_stats: stats,
        full_saturation,
        ..BatchOptions::default()
    };
    let cache = (!explain && !certify && !stats && !full_saturation).then(closure_cache);
    analyze_batch_cached(
        schema,
        &schema.requirements,
        &AnalysisConfig::default(),
        &opts,
        cache,
    )
}

/// The `--certify` pass: run the independent proof checker over every
/// group's kept closure. Appends one summary line on success; on the first
/// rejection, reports the structured [`secflow::CheckError`] and returns
/// [`exit::CERTIFY`]. Returns the certificates so the instrumented path can
/// absorb the per-rule check counters into its metrics.
fn certify_outcome(
    outcome: &BatchOutcome,
    out: &mut String,
) -> Result<Vec<secflow::Certificate>, i32> {
    let mut certs = Vec::with_capacity(outcome.groups.len());
    let mut terms = 0usize;
    for g in &outcome.groups {
        let Some((prog, closure)) = g.artifacts.as_ref() else {
            // The shared phases failed; per-requirement errors were already
            // reported above, so there is nothing to certify here.
            continue;
        };
        match closure.certify(prog, &secflow::rules::RuleConfig::default()) {
            Ok(cert) => {
                terms += cert.terms_checked;
                certs.push(cert);
            }
            Err(e) => {
                let _ = writeln!(out, "certification FAILED for user `{}`: {e}", g.user);
                return Err(exit::CERTIFY);
            }
        }
    }
    let _ = writeln!(
        out,
        "certified: {terms} derivation(s) re-validated across {} closure(s)",
        certs.len()
    );
    Ok(certs)
}

/// Requirement index → group index, from a batch outcome.
fn group_of(outcome: &BatchOutcome, n_reqs: usize) -> Vec<usize> {
    let mut map = vec![0usize; n_reqs];
    for (gi, g) in outcome.groups.iter().enumerate() {
        for &i in &g.req_indexes {
            map[i] = gi;
        }
    }
    map
}

/// The versioned identifier of the audit JSON report shape. Bump the
/// suffix on any structural change — consumers pin on this string.
pub const AUDIT_SCHEMA: &str = "secflow.audit/1";

/// Rendering options for [`render_audit`].
#[derive(Clone, Debug)]
pub struct AuditOptions {
    /// The policy path echoed in the report header.
    pub policy: String,
    /// Text or versioned JSON.
    pub format: AuditFormat,
    /// Drop paths below this band (verdicts and exit codes unchanged).
    pub severity: Option<Severity>,
    /// Walk mode, depth limit and enumeration cap.
    pub provenance: ProvenanceOptions,
}

/// Run the batch driver configured for auditing: proof recording on,
/// artifacts kept (the certifier and the provenance walk both need them),
/// per-group stats collected for the report. The closure cache is not
/// consulted — it holds proof-free partial closures that cannot back an
/// audit.
pub fn audit_batch(schema: &Schema, jobs: usize) -> BatchOutcome {
    let opts = BatchOptions {
        jobs,
        proofs: ProofMode::Full,
        keep_artifacts: true,
        collect_stats: true,
        full_saturation: false,
        ..BatchOptions::default()
    };
    analyze_batch_cached(
        schema,
        &schema.requirements,
        &AnalysisConfig::default(),
        &opts,
        None,
    )
}

/// Render the audit report from a proof-carrying [`BatchOutcome`]:
/// re-certify every group's derivation record, walk each violation
/// witness's proof DAG into flaw paths, and emit either the human-readable
/// listing or the versioned [`AUDIT_SCHEMA`] JSON document. Exit codes
/// reuse the check classes: 0 clean, 1 violations, 3 analysis errors,
/// 4 when certification rejects a derivation (no paths are reported from
/// an uncertified proof store).
pub fn render_audit(schema: &Schema, outcome: &BatchOutcome, opts: &AuditOptions) -> (String, i32) {
    for (i, v) in outcome.verdicts.iter().enumerate() {
        if let Err(e) = v {
            return (
                format!("error {}: {e}\n", schema.requirements[i]),
                exit::INPUT,
            );
        }
    }
    // Certify first: flaw paths are only reported from a derivation record
    // the independent checker accepts.
    let mut derivations = 0usize;
    let mut closures = 0usize;
    for g in &outcome.groups {
        let Some((prog, closure)) = g.artifacts.as_ref() else {
            continue;
        };
        match closure.certify(prog, &secflow::rules::RuleConfig::default()) {
            Ok(cert) => {
                derivations += cert.terms_checked;
                closures += 1;
            }
            Err(e) => {
                return audit_rejected(
                    opts,
                    format!("certification FAILED for user `{}`: {e}", g.user),
                );
            }
        }
    }

    let group_idx = group_of(outcome, schema.requirements.len());
    let min = opts.severity;
    let mut text = String::new();
    let _ = write!(
        text,
        "AUDIT {} — mode {}, max depth {}",
        opts.policy,
        opts.provenance.mode.name(),
        opts.provenance.max_depth
    );
    if let Some(s) = min {
        let _ = write!(text, ", min severity {s}");
    }
    text.push('\n');

    let mut violations_json = Vec::new();
    let mut violated = 0usize;
    let mut total_paths = 0usize;
    let mut by_severity = [0usize; 4]; // indexed by Severity as usize
    let mut max_severity: Option<Severity> = None;

    for (i, req) in schema.requirements.iter().enumerate() {
        let g = &outcome.groups[group_idx[i]];
        let violations = match &outcome.verdicts[i] {
            Ok(Verdict::Satisfied) => {
                let _ = writeln!(text, "ok    {req}");
                continue;
            }
            Ok(Verdict::Violated(v)) => v,
            Err(_) => unreachable!("errors returned above"),
        };
        violated += 1;
        let Some((prog, closure)) = g.artifacts.as_ref() else {
            unreachable!("violated verdicts come from groups whose shared phases succeeded")
        };
        let mut witnesses_json = Vec::new();
        let mut req_score = 0u32;
        let mut witness_text = String::new();
        for v in violations {
            for w in &v.witnesses {
                let mut report = match audit_witness(closure, w, &opts.provenance) {
                    Ok(r) => r,
                    Err(e) => {
                        return audit_rejected(
                            opts,
                            format!("flaw-path walk FAILED for user `{}`: {e}", g.user),
                        )
                    }
                };
                req_score = req_score.max(report.score);
                if let Some(min) = min {
                    report.paths.retain(|p| p.severity >= min);
                }
                total_paths += report.paths.len();
                for p in &report.paths {
                    by_severity[p.severity as usize] += 1;
                    max_severity = Some(max_severity.map_or(p.severity, |m| m.max(p.severity)));
                }
                let _ = writeln!(
                    witness_text,
                    "  witness {}  — {} {} path(s), severity {} (score {})",
                    render_term(prog, w),
                    report.paths.len(),
                    opts.provenance.mode.name(),
                    report.severity,
                    report.score,
                );
                for (pi, p) in report.paths.iter().enumerate() {
                    let _ = writeln!(
                        witness_text,
                        "    path {}: {} (score {}), {} step(s){}",
                        pi + 1,
                        p.severity,
                        p.score,
                        p.steps.len(),
                        if p.truncated { ", truncated" } else { "" },
                    );
                    for line in render_path(prog, p).lines() {
                        let _ = writeln!(witness_text, "      {line}");
                    }
                }
                witnesses_json.push(witness_json(prog, &report));
            }
        }
        let req_severity = Severity::from_score(req_score);
        let _ = writeln!(
            text,
            "FLAW  {req}  ({} occurrence(s), severity {req_severity})",
            violations.len()
        );
        text.push_str(&witness_text);
        violations_json.push(Json::Obj(vec![
            ("requirement".to_owned(), Json::str(&req.to_string())),
            ("user".to_owned(), Json::str(req.user.as_ref())),
            ("severity".to_owned(), Json::str(req_severity.name())),
            ("score".to_owned(), Json::count(req_score as u64)),
            (
                "occurrences".to_owned(),
                Json::count(violations.len() as u64),
            ),
            ("witnesses".to_owned(), Json::Arr(witnesses_json)),
        ]));
    }

    let _ = write!(
        text,
        "{} requirement(s), {violated} violated; {total_paths} flaw path(s)",
        schema.requirements.len()
    );
    if let Some(s) = max_severity {
        let _ = write!(text, "; max severity {s}");
    }
    text.push('\n');
    let _ = writeln!(
        text,
        "certified: {derivations} derivation(s) re-validated across {closures} closure(s)"
    );

    let code = if violated > 0 {
        exit::VIOLATION
    } else {
        exit::OK
    };
    match opts.format {
        AuditFormat::Text => (text, code),
        AuditFormat::Json => {
            let cache = match outcome.cache_stats {
                Some(stats) => Json::Obj(vec![
                    ("hits".to_owned(), Json::count(stats.hits)),
                    ("misses".to_owned(), Json::count(stats.misses)),
                    (
                        "union_recomputes".to_owned(),
                        Json::count(stats.union_recomputes),
                    ),
                    (
                        "occupancy".to_owned(),
                        match outcome.cache_occupancy {
                            Some((len, cap)) => {
                                Json::Arr(vec![Json::count(len as u64), Json::count(cap as u64)])
                            }
                            None => Json::Null,
                        },
                    ),
                ]),
                None => Json::Null,
            };
            let groups = outcome
                .groups
                .iter()
                .map(|g| {
                    Json::Obj(vec![
                        ("user".to_owned(), Json::str(g.user.as_ref())),
                        (
                            "requirements".to_owned(),
                            Json::count(g.req_indexes.len() as u64),
                        ),
                        (
                            "closure_terms".to_owned(),
                            Json::count(g.stats.closure.total_terms()),
                        ),
                        ("rounds".to_owned(), Json::count(g.stats.closure.rounds)),
                    ])
                })
                .collect();
            let doc = Json::Obj(vec![
                ("schema".to_owned(), Json::str(AUDIT_SCHEMA)),
                ("policy".to_owned(), Json::str(&opts.policy)),
                ("mode".to_owned(), Json::str(opts.provenance.mode.name())),
                (
                    "max_depth".to_owned(),
                    Json::count(opts.provenance.max_depth as u64),
                ),
                (
                    "max_paths".to_owned(),
                    Json::count(opts.provenance.max_paths as u64),
                ),
                (
                    "min_severity".to_owned(),
                    min.map_or(Json::Null, |s| Json::str(s.name())),
                ),
                (
                    "requirements".to_owned(),
                    Json::count(schema.requirements.len() as u64),
                ),
                ("violated".to_owned(), Json::count(violated as u64)),
                (
                    "certified".to_owned(),
                    Json::Obj(vec![
                        ("closures".to_owned(), Json::count(closures as u64)),
                        ("derivations".to_owned(), Json::count(derivations as u64)),
                    ]),
                ),
                ("violations".to_owned(), Json::Arr(violations_json)),
                ("groups".to_owned(), Json::Arr(groups)),
                ("cache".to_owned(), cache),
                (
                    "summary".to_owned(),
                    Json::Obj(vec![
                        ("paths".to_owned(), Json::count(total_paths as u64)),
                        (
                            "max_severity".to_owned(),
                            max_severity.map_or(Json::Null, |s| Json::str(s.name())),
                        ),
                        (
                            "by_severity".to_owned(),
                            Json::Obj(
                                [
                                    Severity::Critical,
                                    Severity::High,
                                    Severity::Medium,
                                    Severity::Low,
                                ]
                                .iter()
                                .map(|s| {
                                    (
                                        s.name().to_owned(),
                                        Json::count(by_severity[*s as usize] as u64),
                                    )
                                })
                                .collect(),
                            ),
                        ),
                    ]),
                ),
            ]);
            (doc.pretty(), code)
        }
    }
}

/// The audit failure surface: certification (or the walk itself) rejected
/// the proof store, so no flaw paths are reported. Exit [`exit::CERTIFY`].
fn audit_rejected(opts: &AuditOptions, msg: String) -> (String, i32) {
    match opts.format {
        AuditFormat::Text => (format!("{msg}\n"), exit::CERTIFY),
        AuditFormat::Json => {
            let doc = Json::Obj(vec![
                ("schema".to_owned(), Json::str(AUDIT_SCHEMA)),
                ("policy".to_owned(), Json::str(&opts.policy)),
                ("certified".to_owned(), Json::Bool(false)),
                ("error".to_owned(), Json::str(&msg)),
            ]);
            (doc.pretty(), exit::CERTIFY)
        }
    }
}

/// One witness's JSON block: the rendered term, its aggregate severity and
/// every flaw path with rendered steps.
fn witness_json(prog: &NProgram, report: &secflow::WitnessReport) -> Json {
    let paths = report
        .paths
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("severity".to_owned(), Json::str(p.severity.name())),
                ("score".to_owned(), Json::count(p.score as u64)),
                (
                    "source".to_owned(),
                    Json::str(&render_term(prog, &p.source)),
                ),
                ("source_kind".to_owned(), Json::str(p.source_kind.name())),
                ("sink".to_owned(), Json::str(&render_term(prog, &p.sink))),
                ("truncated".to_owned(), Json::Bool(p.truncated)),
                (
                    "steps".to_owned(),
                    Json::Arr(
                        p.steps
                            .iter()
                            .map(|s| {
                                Json::Obj(vec![
                                    ("term".to_owned(), Json::str(&render_term(prog, &s.term))),
                                    ("rule".to_owned(), Json::str(s.rule)),
                                    ("depth".to_owned(), Json::count(s.depth as u64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        (
            "term".to_owned(),
            Json::str(&render_term(prog, &report.witness)),
        ),
        ("severity".to_owned(), Json::str(report.severity.name())),
        ("score".to_owned(), Json::count(report.score as u64)),
        ("paths_capped".to_owned(), Json::Bool(report.paths_capped)),
        ("paths".to_owned(), Json::Arr(paths)),
    ])
}

/// The `check` loop with stats: like [`check_report`] but the batch driver
/// collects per-group phase timings and closure counters, which aggregate
/// into the metrics report and the trace timeline.
fn check_report_instrumented(
    schema: &Schema,
    explain: bool,
    jobs: usize,
    full_saturation: bool,
    certify: bool,
    col: &mut Collected,
) -> (String, i32) {
    let mut out = String::new();
    if schema.requirements.is_empty() {
        let _ = writeln!(
            out,
            "no `require` declarations in the policy — nothing to check"
        );
        return (out, exit::OK);
    }
    let outcome = check_batch(schema, explain, jobs, full_saturation, certify, true);
    let group_idx = group_of(&outcome, schema.requirements.len());
    collect_batch(schema, &outcome, col);
    let mut violated = 0usize;
    for (i, req) in schema.requirements.iter().enumerate() {
        let g = &outcome.groups[group_idx[i]];
        match &outcome.verdicts[i] {
            Ok(Verdict::Satisfied) => {
                let _ = writeln!(out, "ok    {req}");
            }
            Ok(Verdict::Violated(violations)) => {
                violated += 1;
                let _ = writeln!(out, "FLAW  {req}  ({} occurrence(s))", violations.len());
                if explain {
                    if let Some((prog, closure)) = g.artifacts.as_ref() {
                        render_explanations(prog, closure, violations, &mut out);
                    }
                }
            }
            Err(e) => {
                let _ = writeln!(out, "error {req}: {e}");
                return (out, exit::INPUT);
            }
        }
    }
    let _ = writeln!(
        out,
        "{} requirement(s), {} violated",
        schema.requirements.len(),
        violated
    );
    if certify {
        match certify_outcome(&outcome, &mut out) {
            Ok(certs) => {
                for cert in &certs {
                    col.closure.absorb_certificate(cert);
                }
            }
            Err(code) => return (out, code),
        }
    }
    (out, i32::from(violated > 0))
}

fn check_report(
    schema: &Schema,
    explain: bool,
    jobs: usize,
    full_saturation: bool,
    certify: bool,
) -> (String, i32) {
    let mut out = String::new();
    if schema.requirements.is_empty() {
        let _ = writeln!(
            out,
            "no `require` declarations in the policy — nothing to check"
        );
        return (out, exit::OK);
    }
    let outcome = check_batch(schema, explain, jobs, full_saturation, certify, false);
    let group_idx = group_of(&outcome, schema.requirements.len());
    let mut violated = 0usize;
    for (i, req) in schema.requirements.iter().enumerate() {
        match &outcome.verdicts[i] {
            Ok(Verdict::Satisfied) => {
                let _ = writeln!(out, "ok    {req}");
            }
            Ok(Verdict::Violated(violations)) => {
                violated += 1;
                let _ = writeln!(out, "FLAW  {req}  ({} occurrence(s))", violations.len());
                if explain {
                    if let Some((prog, closure)) = outcome.groups[group_idx[i]].artifacts.as_ref() {
                        render_explanations(prog, closure, violations, &mut out);
                    }
                }
            }
            Err(e) => {
                let _ = writeln!(out, "error {req}: {e}");
                return (out, exit::INPUT);
            }
        }
    }
    let _ = writeln!(
        out,
        "{} requirement(s), {} violated",
        schema.requirements.len(),
        violated
    );
    if certify {
        if let Err(code) = certify_outcome(&outcome, &mut out) {
            return (out, code);
        }
    }
    (out, i32::from(violated > 0))
}

/// The `--stream` check path: verdict lines are rendered and appended the
/// moment their group completes, so nothing per-group is buffered and
/// memory stays flat however many users the policy holds. Each line is
/// tagged `[g<index>]` with the group's first-seen position (the streaming
/// determinism contract: records may complete in any order under a
/// parallel pool, but the index lets a consumer reassemble input order).
/// Unlike the buffered path, an analysis error does not short-circuit —
/// every group is still reported, and the run exits [`exit::INPUT`] when
/// any error occurred, else 1 on violations as usual. With `col` the run is
/// instrumented: closure stats are collected (which bypasses the cache,
/// like the buffered instrumented path) and the streaming summary is folded
/// into the metrics collector.
///
/// With `ndjson` each group record becomes exactly one compact JSON object
/// per line — `{"group":…,"user":…,"occurrences_checked":…,"verdicts":[…]}`
/// with per-verdict `requirement` (input index), `require` (display form)
/// and `status` of `"satisfied"`, `"violated"` (plus `"occurrences"`) or
/// `"error"` (plus `"error"` message) — followed by one final
/// `{"summary":{…}}` line. The schema is pinned by
/// `ndjson_stream_schema_is_pinned`.
/// Render one streamed group record as a compact NDJSON object, returning
/// the object plus the record's `(violated, error)` verdict tallies. Free
/// function so the error arm is unit-testable without provoking a real
/// budget blowout through the binary path (the CLI runs on default budgets,
/// which no test-sized policy exhausts).
fn ndjson_record(schema: &Schema, record: &GroupRecord) -> (Json, usize, usize) {
    let mut violated = 0usize;
    let mut errors = 0usize;
    let mut verdicts = Vec::with_capacity(record.verdicts.len());
    for (i, verdict) in &record.verdicts {
        let req = &schema.requirements[*i];
        let mut fields = vec![
            ("requirement".to_owned(), Json::count(*i as u64)),
            ("require".to_owned(), Json::str(&req.to_string())),
        ];
        match verdict {
            Ok(Verdict::Satisfied) => {
                fields.push(("status".to_owned(), Json::str("satisfied")));
            }
            Ok(Verdict::Violated(violations)) => {
                violated += 1;
                fields.push(("status".to_owned(), Json::str("violated")));
                fields.push((
                    "occurrences".to_owned(),
                    Json::count(violations.len() as u64),
                ));
            }
            Err(e) => {
                errors += 1;
                fields.push(("status".to_owned(), Json::str("error")));
                fields.push(("error".to_owned(), Json::str(&e.to_string())));
            }
        }
        verdicts.push(Json::Obj(fields));
    }
    let obj = Json::Obj(vec![
        ("group".to_owned(), Json::count(record.group_index as u64)),
        ("user".to_owned(), Json::str(record.user.as_str())),
        (
            "occurrences_checked".to_owned(),
            Json::count(record.occurrences_checked),
        ),
        ("verdicts".to_owned(), Json::Arr(verdicts)),
    ]);
    (obj, violated, errors)
}

fn check_report_stream(
    schema: &Schema,
    jobs: usize,
    full_saturation: bool,
    ndjson: bool,
    col: Option<&mut Collected>,
) -> (String, i32) {
    if schema.requirements.is_empty() {
        return (
            "no `require` declarations in the policy — nothing to check\n".to_owned(),
            exit::OK,
        );
    }
    let stats = col.is_some();
    let opts = BatchOptions {
        jobs,
        proofs: ProofMode::Off,
        keep_artifacts: false,
        collect_stats: stats,
        full_saturation,
        ..BatchOptions::default()
    };
    let cache = (!stats && !full_saturation).then(closure_cache);

    /// Renders each record into verdict lines — or one NDJSON object —
    /// under the sink lock; violation/error tallies ride along in the same
    /// mutex.
    struct LineSink<'a> {
        schema: &'a Schema,
        ndjson: bool,
        out: std::sync::Mutex<(String, usize, usize)>, // (text, violated, errors)
    }
    impl AnalysisSink for LineSink<'_> {
        fn emit(&self, record: GroupRecord) {
            let mut lines = String::new();
            let mut violated = 0usize;
            let mut errors = 0usize;
            let gi = record.group_index;
            if self.ndjson {
                let (obj, v, e) = ndjson_record(self.schema, &record);
                violated += v;
                errors += e;
                let _ = writeln!(lines, "{obj}");
            } else {
                for (i, verdict) in &record.verdicts {
                    let req = &self.schema.requirements[*i];
                    match verdict {
                        Ok(Verdict::Satisfied) => {
                            let _ = writeln!(lines, "[g{gi}] ok    {req}");
                        }
                        Ok(Verdict::Violated(violations)) => {
                            violated += 1;
                            let _ = writeln!(
                                lines,
                                "[g{gi}] FLAW  {req}  ({} occurrence(s))",
                                violations.len()
                            );
                        }
                        Err(e) => {
                            errors += 1;
                            let _ = writeln!(lines, "[g{gi}] error {req}: {e}");
                        }
                    }
                }
            }
            let mut guard = self.out.lock().expect("no panics hold the sink lock");
            guard.0.push_str(&lines);
            guard.1 += violated;
            guard.2 += errors;
        }
    }

    let sink = LineSink {
        schema,
        ndjson,
        out: std::sync::Mutex::new((String::new(), 0, 0)),
    };
    let summary = analyze_batch_streaming(
        schema,
        &schema.requirements,
        &AnalysisConfig::default(),
        &opts,
        cache,
        &sink,
    );
    let (mut out, violated, errors) = sink.out.into_inner().expect("no panics hold the sink lock");
    if ndjson {
        let obj = Json::Obj(vec![(
            "summary".to_owned(),
            Json::Obj(vec![
                (
                    "requirements".to_owned(),
                    Json::count(summary.requirements as u64),
                ),
                ("violated".to_owned(), Json::count(violated as u64)),
                ("errors".to_owned(), Json::count(errors as u64)),
                ("groups".to_owned(), Json::count(summary.groups as u64)),
                ("workers".to_owned(), Json::count(summary.jobs_used as u64)),
            ]),
        )]);
        let _ = writeln!(out, "{obj}");
    } else {
        let _ = writeln!(
            out,
            "{} requirement(s), {} violated — streamed {} group(s) on {} worker(s)",
            summary.requirements, violated, summary.groups, summary.jobs_used
        );
    }
    if let Some(col) = col {
        col.closure.merge(&summary.closure);
        col.occurrences = summary.occurrences;
        col.requirements = summary.requirements as u64;
        col.steals = summary.steals;
        col.cache = Some(cache_snapshot(summary.cache_stats, summary.cache_occupancy));
    }
    let code = if errors > 0 {
        exit::INPUT
    } else {
        i32::from(violated > 0)
    };
    (out, code)
}

/// Print Figure-1 style derivations for every witness of a violated
/// requirement (the `--explain` path), reusing the batch group's
/// proof-carrying program and closure.
fn render_explanations(
    prog: &NProgram,
    closure: &Closure,
    violations: &[secflow::Violation],
    out: &mut String,
) {
    for v in violations {
        for w in &v.witnesses {
            let _ = writeln!(out, "  witness {}", render_term(prog, w));
            let derivation = render_derivation(prog, closure, w);
            for line in derivation.lines() {
                let _ = writeln!(out, "    {line}");
            }
        }
    }
}

fn unfold_report(schema: &Schema, user: &str) -> (String, i32) {
    let Some(caps) = schema.user_str(user) else {
        return (format!("error: unknown user `{user}`\n"), exit::INPUT);
    };
    match NProgram::unfold(schema, caps) {
        Ok(prog) => {
            let mut out = String::new();
            let _ = writeln!(out, "S'(F) for {user} = {caps}:");
            for outer in &prog.outers {
                let _ = writeln!(out, "  {}: {}", outer.fn_ref, prog.render(outer.root));
            }
            let _ = writeln!(out, "{} numbered occurrences", prog.len());
            // Also list the occurrences of every required target for this
            // user, as orientation.
            for req in schema
                .requirements
                .iter()
                .filter(|r| r.user.as_str() == user)
            {
                let occ = occurrences(&prog, &req.target);
                let _ = writeln!(out, "occurrences of {}: {}", req.target, occ.len());
            }
            (out, 0)
        }
        Err(e) => (format!("error: {e}\n"), exit::INPUT),
    }
}

fn attack_report(schema: &Schema, steps: usize) -> (String, i32) {
    let mut out = String::new();
    if schema.requirements.is_empty() {
        let _ = writeln!(out, "no `require` declarations — nothing to attack");
        return (out, 0);
    }
    let cfg = AttackerConfig {
        strategies: StrategySpec {
            max_steps: steps,
            ..StrategySpec::default()
        },
        ..AttackerConfig::default()
    };
    let mut realised = 0usize;
    for req in &schema.requirements {
        match attack_requirement(schema, req, &cfg) {
            Ok(o) if o.achieved => {
                realised += 1;
                let _ = writeln!(
                    out,
                    "REALISED {req}\n  {}",
                    o.witness.map(|w| w.summary).unwrap_or_default()
                );
            }
            Ok(o) => {
                let _ = writeln!(
                    out,
                    "not realised {req}{}",
                    if o.skipped_shapes > 0 {
                        format!("  ({} shapes skipped by bounds)", o.skipped_shapes)
                    } else {
                        String::new()
                    }
                );
            }
            Err(e) => {
                let _ = writeln!(out, "error {req}: {e}");
            }
        }
    }
    let _ = writeln!(
        out,
        "{} requirement(s), {} realised within bounds",
        schema.requirements.len(),
        realised
    );
    (out, i32::from(realised > 0))
}

fn fix_report(schema: &Schema) -> (String, i32) {
    use secflow::advisor::{advise, Advice, AdvisorConfig};
    let mut out = String::new();
    if schema.requirements.is_empty() {
        let _ = writeln!(out, "no `require` declarations — nothing to fix");
        return (out, 0);
    }
    let mut flawed = 0usize;
    for req in &schema.requirements {
        match advise(schema, req, &AdvisorConfig::default()) {
            Ok(Advice::AlreadySatisfied) => {
                let _ = writeln!(out, "ok    {req}");
            }
            Ok(Advice::Repairs(repairs)) => {
                flawed += 1;
                let _ = writeln!(out, "FLAW  {req} — minimal repairs:");
                for r in repairs {
                    let _ = writeln!(out, "        {r}");
                }
            }
            Ok(Advice::BudgetExhausted(repairs)) => {
                flawed += 1;
                let _ = writeln!(
                    out,
                    "FLAW  {req} — search budget exhausted; repairs found so far:"
                );
                for r in repairs {
                    let _ = writeln!(out, "        {r}");
                }
            }
            Ok(Advice::Unrepairable) => {
                flawed += 1;
                let _ = writeln!(out, "FLAW  {req} — no revocation subset helps");
            }
            Err(e) => {
                let _ = writeln!(out, "error {req}: {e}");
                return (out, exit::INPUT);
            }
        }
    }
    (out, i32::from(flawed > 0))
}

// ---------------------------------------------------------------------------
// serve — the resident incremental session
// ---------------------------------------------------------------------------

/// A scanner over one NDJSON request line: a flat JSON object whose values
/// are all strings, e.g. `{"op":"grant","user":"clerk","fn":"w_budget"}`.
/// Anything else — nested values, numbers, trailing garbage — is a
/// per-request error; the session keeps running.
struct ReqScanner {
    chars: Vec<char>,
    pos: usize,
}

impl ReqScanner {
    fn ws(&mut self) {
        while self.chars.get(self.pos).is_some_and(|c| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.bump() {
            Some(c) if c == want => Ok(()),
            Some(c) => Err(format!("expected `{want}`, found `{c}`")),
            None => Err(format!("expected `{want}`, found end of line")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(s),
                Some('\\') => match self.bump() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('/') => s.push('/'),
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('r') => s.push('\r'),
                    Some(other) => return Err(format!("unsupported escape `\\{other}`")),
                    None => return Err("unterminated string escape".into()),
                },
                Some(c) => s.push(c),
                None => return Err("unterminated string".into()),
            }
        }
    }
}

/// Parse one request line into its `(key, value)` fields, preserving order.
fn parse_request(line: &str) -> Result<Vec<(String, String)>, String> {
    let mut p = ReqScanner {
        chars: line.chars().collect(),
        pos: 0,
    };
    p.ws();
    p.expect('{').map_err(|e| format!("bad request: {e}"))?;
    let mut fields = Vec::new();
    p.ws();
    if p.chars.get(p.pos) == Some(&'}') {
        p.pos += 1;
    } else {
        loop {
            p.ws();
            let key = p.string().map_err(|e| format!("bad request key: {e}"))?;
            p.ws();
            p.expect(':').map_err(|e| format!("bad request: {e}"))?;
            p.ws();
            let value = p
                .string()
                .map_err(|e| format!("bad request value for `{key}` (string values only): {e}"))?;
            fields.push((key, value));
            p.ws();
            match p.bump() {
                Some(',') => continue,
                Some('}') => break,
                Some(c) => return Err(format!("bad request: expected `,` or `}}`, found `{c}`")),
                None => return Err("bad request: unterminated object".into()),
            }
        }
    }
    p.ws();
    if p.pos != p.chars.len() {
        return Err("bad request: trailing characters after the object".into());
    }
    Ok(fields)
}

/// A requirement's verdict reduced to what the serve records carry —
/// deliberately witness-free (status + occurrence count), so the resident
/// incremental path and the cached batch path (whose closures pick
/// witnesses in different orders) produce identical records.
#[derive(Clone, PartialEq, Eq)]
enum ReqStatus {
    Satisfied,
    Violated(u64),
    Error(String),
}

impl ReqStatus {
    fn of(v: &Result<Verdict, secflow::algorithm::AnalysisError>) -> ReqStatus {
        match v {
            Ok(Verdict::Satisfied) => ReqStatus::Satisfied,
            Ok(Verdict::Violated(vs)) => ReqStatus::Violated(vs.len() as u64),
            Err(e) => ReqStatus::Error(e.to_string()),
        }
    }
}

/// The state behind one `secflow serve` session: per-user incremental
/// closures materialised on first edit, the last-reported statuses the
/// edit deltas are diffed against, and the process-wide [`ClosureCache`]
/// answering checks of users that were never edited.
struct ServeState<'s> {
    schema: &'s Schema,
    config: AnalysisConfig,
    resident: std::collections::BTreeMap<UserName, IncrementalUser>,
    last: std::collections::BTreeMap<UserName, Vec<(usize, ReqStatus)>>,
    requests: u64,
    edits: u64,
}

impl<'s> ServeState<'s> {
    fn new(schema: &'s Schema) -> ServeState<'s> {
        ServeState {
            schema,
            config: AnalysisConfig::default(),
            resident: std::collections::BTreeMap::new(),
            last: std::collections::BTreeMap::new(),
            requests: 0,
            edits: 0,
        }
    }

    fn ready_line(&self) -> String {
        let obj = Json::Obj(vec![(
            "ready".to_owned(),
            Json::Obj(vec![
                (
                    "users".to_owned(),
                    Json::count(self.schema.users.len() as u64),
                ),
                (
                    "requirements".to_owned(),
                    Json::count(self.schema.requirements.len() as u64),
                ),
            ]),
        )]);
        format!("{obj}\n")
    }

    fn shutdown_line(&self) -> String {
        let obj = Json::Obj(vec![(
            "shutdown".to_owned(),
            Json::Obj(vec![
                ("requests".to_owned(), Json::count(self.requests)),
                ("edits".to_owned(), Json::count(self.edits)),
            ]),
        )]);
        format!("{obj}\n")
    }

    /// Current statuses of every requirement naming `user`: read through
    /// the maintained incremental closure when the user is resident, the
    /// cached batch path otherwise.
    fn statuses(&self, user: &UserName) -> Vec<(usize, ReqStatus)> {
        let idxs: Vec<usize> = self
            .schema
            .requirements
            .iter()
            .enumerate()
            .filter(|(_, r)| &r.user == user)
            .map(|(i, _)| i)
            .collect();
        if let Some(inc) = self.resident.get(user) {
            idxs.into_iter()
                .map(|i| {
                    let v = inc.check(&self.schema.requirements[i]);
                    (i, ReqStatus::of(&Ok(v)))
                })
                .collect()
        } else {
            let reqs: Vec<_> = idxs
                .iter()
                .map(|&i| self.schema.requirements[i].clone())
                .collect();
            let outcome = analyze_batch_cached(
                self.schema,
                &reqs,
                &self.config,
                &BatchOptions::default(),
                Some(closure_cache()),
            );
            idxs.iter()
                .zip(&outcome.verdicts)
                .map(|(&i, v)| (i, ReqStatus::of(v)))
                .collect()
        }
    }

    /// One verdict object, shaped exactly like the `check --stream
    /// --format=ndjson` per-verdict records.
    fn verdict_json(&self, idx: usize, st: &ReqStatus) -> Json {
        let req = &self.schema.requirements[idx];
        let mut fields = vec![
            ("requirement".to_owned(), Json::count(idx as u64)),
            ("require".to_owned(), Json::str(&req.to_string())),
        ];
        match st {
            ReqStatus::Satisfied => fields.push(("status".to_owned(), Json::str("satisfied"))),
            ReqStatus::Violated(n) => {
                fields.push(("status".to_owned(), Json::str("violated")));
                fields.push(("occurrences".to_owned(), Json::count(*n)));
            }
            ReqStatus::Error(e) => {
                fields.push(("status".to_owned(), Json::str("error")));
                fields.push(("error".to_owned(), Json::str(e)));
            }
        }
        Json::Obj(fields)
    }

    fn field<'a>(fields: &'a [(String, String)], key: &str) -> Option<&'a str> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn need<'a>(fields: &'a [(String, String)], key: &str, op: &str) -> Result<&'a str, String> {
        Self::field(fields, key).ok_or_else(|| format!("`{op}` needs a `{key}` field"))
    }

    fn user_named(&self, name: &str) -> Result<UserName, String> {
        let user = UserName::new(name);
        if self.schema.users.contains_key(&user) {
            Ok(user)
        } else {
            Err(format!("unknown user `{name}`"))
        }
    }

    /// Handle one request line. Returns the response text (empty for blank
    /// lines) and whether the session should end.
    fn handle(&mut self, line: &str) -> (String, bool) {
        if line.trim().is_empty() {
            return (String::new(), false);
        }
        self.requests += 1;
        let seq = self.requests;
        match self.dispatch(line) {
            Ok(resp) => resp,
            Err(msg) => {
                let obj = Json::Obj(vec![
                    ("error".to_owned(), Json::str(&msg)),
                    ("request".to_owned(), Json::count(seq)),
                ]);
                (format!("{obj}\n"), false)
            }
        }
    }

    fn dispatch(&mut self, line: &str) -> Result<(String, bool), String> {
        let fields = parse_request(line)?;
        let op = Self::need(&fields, "op", "request")?.to_owned();
        match op.as_str() {
            "check" => {
                let user = self.user_named(Self::need(&fields, "user", "check")?)?;
                let statuses = self.statuses(&user);
                let verdicts: Vec<Json> = statuses
                    .iter()
                    .map(|(i, st)| self.verdict_json(*i, st))
                    .collect();
                let obj = Json::Obj(vec![
                    ("op".to_owned(), Json::str("check")),
                    ("user".to_owned(), Json::str(user.as_str())),
                    ("verdicts".to_owned(), Json::Arr(verdicts)),
                ]);
                self.last.insert(user, statuses);
                Ok((format!("{obj}\n"), false))
            }
            "grant" | "revoke" => {
                let user = self.user_named(Self::need(&fields, "user", &op)?)?;
                let f: FnRef = Self::need(&fields, "fn", &op)?.parse()?;
                self.edit(&op, user, &f)
            }
            "stats" => Ok((self.stats_line(), false)),
            "shutdown" => Ok((self.shutdown_line(), true)),
            other => Err(format!(
                "unknown op `{other}` (use check, grant, revoke, stats or shutdown)"
            )),
        }
    }

    /// Apply one grant/revoke: materialise the user's incremental state if
    /// this is their first edit, establish the delta baseline, run the
    /// edit, and report only the verdicts that changed.
    fn edit(&mut self, op: &str, user: UserName, f: &FnRef) -> Result<(String, bool), String> {
        if !self.resident.contains_key(&user) {
            let inc = IncrementalUser::new(self.schema, &user, &self.config)
                .map_err(|e| format!("cannot materialise `{}`: {e}", user.as_str()))?;
            self.resident.insert(user.clone(), inc);
        }
        // The delta baseline is what this session last reported for the
        // user — computed now, pre-edit, if they were never checked.
        if !self.last.contains_key(&user) {
            let base = self.statuses(&user);
            self.last.insert(user.clone(), base);
        }
        let inc = self.resident.get_mut(&user).expect("resident just ensured");
        let outcome = match op {
            "grant" => inc.grant(self.schema, f),
            _ => inc.revoke(self.schema, f),
        }
        .map_err(|e| format!("{op} {f} failed: {e}"))?;
        if outcome.changed {
            self.edits += 1;
        }
        let terms = inc.closure().len() as u64;
        let now = self.statuses(&user);
        let before = self.last.get(&user).expect("baseline just ensured");
        let deltas: Vec<Json> = now
            .iter()
            .filter(|(i, st)| {
                before
                    .iter()
                    .find(|(j, _)| j == i)
                    .is_none_or(|(_, old)| old != st)
            })
            .map(|(i, st)| self.verdict_json(*i, st))
            .collect();
        let obj = Json::Obj(vec![
            ("op".to_owned(), Json::str(op)),
            ("user".to_owned(), Json::str(user.as_str())),
            ("fn".to_owned(), Json::str(&f.to_string())),
            ("changed".to_owned(), Json::Bool(outcome.changed)),
            ("deleted".to_owned(), Json::count(outcome.deleted as u64)),
            (
                "survivors".to_owned(),
                Json::count(outcome.survivors as u64),
            ),
            (
                "rederived".to_owned(),
                Json::count(outcome.rederived as u64),
            ),
            ("terms".to_owned(), Json::count(terms)),
            ("deltas".to_owned(), Json::Arr(deltas)),
        ]);
        self.last.insert(user, now);
        Ok((format!("{obj}\n"), false))
    }

    fn stats_line(&self) -> String {
        let cache = closure_cache();
        let cs = cache.stats();
        let resident_terms: u64 = self
            .resident
            .values()
            .map(|i| i.closure().len() as u64)
            .sum();
        let obj = Json::Obj(vec![(
            "stats".to_owned(),
            Json::Obj(vec![
                ("requests".to_owned(), Json::count(self.requests)),
                ("edits".to_owned(), Json::count(self.edits)),
                (
                    "resident".to_owned(),
                    Json::count(self.resident.len() as u64),
                ),
                ("resident_terms".to_owned(), Json::count(resident_terms)),
                (
                    "cache".to_owned(),
                    Json::Obj(vec![
                        ("entries".to_owned(), Json::count(cache.len() as u64)),
                        ("capacity".to_owned(), Json::count(cache.capacity() as u64)),
                        ("shards".to_owned(), Json::count(cache.shard_count() as u64)),
                        ("hits".to_owned(), Json::count(cs.hits)),
                        ("misses".to_owned(), Json::count(cs.misses)),
                        ("evictions".to_owned(), Json::count(cs.evictions)),
                    ]),
                ),
            ]),
        )]);
        format!("{obj}\n")
    }
}

/// Drive a full serve session over an in-memory request script — the
/// unit-testable core of `secflow serve`. Returns the concatenated NDJSON
/// response stream and the exit code. The stream opens with a
/// `{"ready":…}` line and always ends with a `{"shutdown":…}` line,
/// whether the script asked for it or simply ran out (EOF).
pub fn serve_session<I>(schema: &Schema, requests: I) -> (String, i32)
where
    I: IntoIterator,
    I::Item: AsRef<str>,
{
    let mut state = ServeState::new(schema);
    let mut out = state.ready_line();
    for line in requests {
        let (resp, done) = state.handle(line.as_ref());
        out.push_str(&resp);
        if done {
            return (out, exit::OK);
        }
    }
    out.push_str(&state.shutdown_line());
    (out, exit::OK)
}

/// The real `secflow serve` loop: NDJSON requests from stdin, responses
/// written (and flushed) to stdout line by line — a watch mode or editor
/// integration sees each verdict delta the moment the edit lands. The
/// buffered `(report, code)` return stays empty; everything was already
/// streamed.
fn serve_stdin(schema: &Schema) -> (String, i32) {
    use std::io::{BufRead as _, Write as _};
    let mut state = ServeState::new(schema);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let _ = out.write_all(state.ready_line().as_bytes());
    let _ = out.flush();
    for line in std::io::stdin().lock().lines() {
        let Ok(line) = line else { break };
        let (resp, done) = state.handle(&line);
        let _ = out.write_all(resp.as_bytes());
        let _ = out.flush();
        if done {
            return (String::new(), exit::OK);
        }
    }
    let _ = out.write_all(state.shutdown_line().as_bytes());
    let _ = out.flush();
    (String::new(), exit::OK)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The unit-threshold variant: the attack subcommand's probe domain is
    // {0,1,2}, which can bracket `salary` but not `10 * salary`.
    const POLICY: &str = r#"
        class Broker { salary: int, budget: int }
        fn checkBudget(b: Broker): bool { r_budget(b) >= r_salary(b) }
        user clerk { checkBudget, w_budget }
        user safe_clerk { checkBudget }
        require (clerk, r_salary(x) : ti)
        require (safe_clerk, r_salary(x) : ti)
    "#;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn arg_parsing() {
        assert_eq!(parse_args(&[]), Ok(Command::Help));
        assert_eq!(parse_args(&s(&["--help"])), Ok(Command::Help));
        assert_eq!(
            parse_args(&s(&["check", "p.sfl", "--explain"])),
            Ok(Command::Check {
                file: "p.sfl".into(),
                explain: true,
                jobs: 1,
                full_saturation: false,
                certify: false,
                stream: false,
                ndjson: false,
            })
        );
        assert_eq!(
            parse_args(&s(&["unfold", "p.sfl", "--user", "clerk"])),
            Ok(Command::Unfold {
                file: "p.sfl".into(),
                user: "clerk".into()
            })
        );
        assert_eq!(
            parse_args(&s(&["attack", "p.sfl", "--steps", "3"])),
            Ok(Command::Attack {
                file: "p.sfl".into(),
                steps: 3
            })
        );
        assert!(parse_args(&s(&["bogus"])).is_err());
        assert!(parse_args(&s(&["unfold", "p.sfl"])).is_err());
        assert!(parse_args(&s(&["attack", "p.sfl", "--steps", "x"])).is_err());
    }

    #[test]
    fn jobs_flag_parsing() {
        assert_eq!(
            parse_args(&s(&["check", "p.sfl", "--jobs", "4"])),
            Ok(Command::Check {
                file: "p.sfl".into(),
                explain: false,
                jobs: 4,
                full_saturation: false,
                certify: false,
                stream: false,
                ndjson: false,
            })
        );
        assert!(parse_args(&s(&["check", "p.sfl", "--jobs"])).is_err());
        assert!(parse_args(&s(&["check", "p.sfl", "--jobs", "x"])).is_err());
        // 0 is not an error: it asks for auto-detected parallelism.
        assert_eq!(
            parse_args(&s(&["check", "p.sfl", "--jobs", "0"])),
            Ok(Command::Check {
                file: "p.sfl".into(),
                explain: false,
                jobs: 0,
                full_saturation: false,
                certify: false,
                stream: false,
                ndjson: false,
            })
        );
    }

    #[test]
    fn stream_flag_parsing() {
        assert_eq!(
            parse_args(&s(&["check", "p.sfl", "--stream", "--jobs", "0"])),
            Ok(Command::Check {
                file: "p.sfl".into(),
                explain: false,
                jobs: 0,
                full_saturation: false,
                certify: false,
                stream: true,
                ndjson: false,
            })
        );
        // --stream buffers nothing, so the artifact-hungry flags conflict.
        let err = parse_args(&s(&["check", "p.sfl", "--stream", "--explain"])).unwrap_err();
        assert!(err.contains("--stream"), "{err}");
        assert!(parse_args(&s(&["check", "p.sfl", "--stream", "--certify"])).is_err());
    }

    #[test]
    fn ndjson_flag_parsing() {
        assert_eq!(
            parse_args(&s(&["check", "p.sfl", "--stream", "--format=ndjson"])),
            Ok(Command::Check {
                file: "p.sfl".into(),
                explain: false,
                jobs: 1,
                full_saturation: false,
                certify: false,
                stream: true,
                ndjson: true,
            })
        );
        // --format=text is the accepted default spelling.
        assert_eq!(
            parse_args(&s(&["check", "p.sfl", "--stream", "--format=text"])),
            Ok(Command::Check {
                file: "p.sfl".into(),
                explain: false,
                jobs: 1,
                full_saturation: false,
                certify: false,
                stream: true,
                ndjson: false,
            })
        );
        // The record format only exists on the streaming path.
        let err = parse_args(&s(&["check", "p.sfl", "--format=ndjson"])).unwrap_err();
        assert!(err.contains("--stream"), "{err}");
        assert!(parse_args(&s(&["check", "p.sfl", "--format=xml"])).is_err());
    }

    /// The satellite golden test: the NDJSON stream's schema — key names,
    /// key order, status vocabulary, and the trailing summary object — is
    /// pinned byte for byte (serial run, so record order is first-seen
    /// group order).
    #[test]
    fn ndjson_stream_schema_is_pinned() {
        let cmd = Command::Check {
            file: "-".into(),
            explain: false,
            jobs: 1,
            full_saturation: false,
            certify: false,
            stream: true,
            ndjson: true,
        };
        let (out, code) = run_on_source(&cmd, POLICY);
        assert_eq!(code, 1, "{out}");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines,
            vec![
                "{\"group\":0,\"user\":\"clerk\",\"occurrences_checked\":1,\"verdicts\":\
                 [{\"requirement\":0,\"require\":\"(clerk, r_salary(x):ti)\",\
                 \"status\":\"violated\",\"occurrences\":1}]}",
                "{\"group\":1,\"user\":\"safe_clerk\",\"occurrences_checked\":1,\"verdicts\":\
                 [{\"requirement\":1,\"require\":\"(safe_clerk, r_salary(x):ti)\",\
                 \"status\":\"satisfied\"}]}",
                "{\"summary\":{\"requirements\":2,\"violated\":1,\"errors\":0,\
                 \"groups\":2,\"workers\":1}}",
            ],
        );
        // Every line is a standalone JSON document (the NDJSON contract),
        // and verdict counts agree with the buffered path's exit code.
        for line in &lines {
            Json::parse(line).expect("each stream line parses as JSON");
        }
    }

    #[test]
    fn ndjson_stream_reports_errors_per_group() {
        // An analysis error surfaces on the verdict object as status
        // "error" plus the error message. Exercised against the renderer
        // directly: the streaming path runs on default budgets, which no
        // test-sized policy can exhaust, so the record is built by hand
        // with a budget-blowout verdict.
        let schema = parse_schema(POLICY).unwrap();
        check_schema(&schema).unwrap();
        let record = GroupRecord {
            group_index: 3,
            worker: 0,
            user: oodb_model::UserName::new("clerk"),
            verdicts: vec![(
                1,
                Err(secflow::algorithm::AnalysisError::Closure(
                    secflow::closure::ClosureError::TermLimit { limit: 64 },
                )),
            )],
            occurrences_checked: 0,
        };
        let (obj, violated, errors) = ndjson_record(&schema, &record);
        assert_eq!((violated, errors), (0, 1));
        let line = obj.to_string();
        let parsed = Json::parse(&line).expect("record renders as one JSON object");
        assert_eq!(parsed.get("group").and_then(Json::as_u64), Some(3));
        let verdicts = parsed.get("verdicts").and_then(Json::as_arr).unwrap();
        assert_eq!(
            verdicts[0].get("status").and_then(Json::as_str),
            Some("error")
        );
        assert_eq!(
            verdicts[0].get("requirement").and_then(Json::as_u64),
            Some(1)
        );
        let msg = verdicts[0].get("error").and_then(Json::as_str).unwrap();
        assert!(msg.contains("budget of 64 terms"), "{msg}");
    }

    #[test]
    fn streamed_check_matches_buffered_verdicts() {
        let buffered = Command::Check {
            file: "-".into(),
            explain: false,
            jobs: 1,
            full_saturation: false,
            certify: false,
            stream: false,
            ndjson: false,
        };
        let (plain, plain_code) = run_on_source(&buffered, POLICY);
        for jobs in [1usize, 4] {
            let streamed = Command::Check {
                file: "-".into(),
                explain: false,
                jobs,
                full_saturation: false,
                certify: false,
                stream: true,
                ndjson: false,
            };
            let (out, code) = run_on_source(&streamed, POLICY);
            assert_eq!(code, plain_code, "stream must keep the exit code\n{out}");
            // Strip the [g<i>] tags, sort by group index, and the verdict
            // lines must be exactly the buffered ones.
            let mut tagged: Vec<(usize, &str)> = Vec::new();
            let mut lines = out.lines().collect::<Vec<_>>();
            let summary = lines.pop().unwrap();
            assert!(
                summary.contains("2 requirement(s), 1 violated — streamed 2 group(s)"),
                "{summary}"
            );
            for line in lines {
                let rest = line.strip_prefix("[g").unwrap();
                let (gi, rest) = rest.split_once("] ").unwrap();
                tagged.push((gi.parse().unwrap(), rest));
            }
            tagged.sort_by_key(|(gi, _)| *gi);
            let reassembled: Vec<&str> = tagged.iter().map(|(_, l)| *l).collect();
            let buffered_lines: Vec<&str> =
                plain.lines().take_while(|l| !l.starts_with('2')).collect();
            assert_eq!(reassembled, buffered_lines);
        }
        // Instrumented streaming keeps stdout and surfaces batch metrics.
        let streamed = Command::Check {
            file: "-".into(),
            explain: false,
            jobs: 2,
            full_saturation: false,
            certify: false,
            stream: true,
            ndjson: false,
        };
        let obs = ObsOptions {
            metrics: Some(MetricsFormat::Json),
            trace: None,
        };
        let out = run_on_source_with_obs(&streamed, POLICY, &obs);
        assert_eq!(out.code, 1);
        assert!(out.stderr.contains("\"batch.steals\""), "{}", out.stderr);
        assert!(
            out.stderr.contains("\"cache.shard.count\""),
            "{}",
            out.stderr
        );
    }

    #[test]
    fn full_saturation_flag_parsing() {
        assert_eq!(
            parse_args(&s(&["check", "p.sfl", "--full-saturation"])),
            Ok(Command::Check {
                file: "p.sfl".into(),
                explain: false,
                jobs: 1,
                full_saturation: true,
                certify: false,
                stream: false,
                ndjson: false,
            })
        );
        // Unknown check flags mention the escape hatch.
        let err = parse_args(&s(&["check", "p.sfl", "--full"])).unwrap_err();
        assert!(err.contains("--full-saturation"), "{err}");
    }

    #[test]
    fn full_saturation_output_is_byte_identical() {
        let demand = Command::Check {
            file: "-".into(),
            explain: false,
            jobs: 1,
            full_saturation: false,
            certify: false,
            stream: false,
            ndjson: false,
        };
        let full = Command::Check {
            file: "-".into(),
            explain: false,
            jobs: 1,
            full_saturation: true,
            certify: false,
            stream: false,
            ndjson: false,
        };
        assert_eq!(
            run_on_source(&demand, POLICY),
            run_on_source(&full, POLICY),
            "--full-saturation must not change stdout or the exit code"
        );
    }

    #[test]
    fn explain_works_with_full_saturation() {
        let cmd = Command::Check {
            file: "-".into(),
            explain: true,
            jobs: 1,
            full_saturation: true,
            certify: false,
            stream: false,
            ndjson: false,
        };
        let (report, code) = run_on_source(&cmd, POLICY);
        assert_eq!(code, 1);
        assert!(report.contains("witness ti["));
        assert!(report.contains("(axiom for =)"));
    }

    #[test]
    fn repeated_checks_share_the_process_cache() {
        let cmd = Command::Check {
            file: "-".into(),
            explain: false,
            jobs: 1,
            full_saturation: false,
            certify: false,
            stream: false,
            ndjson: false,
        };
        let first = run_on_source(&cmd, POLICY);
        let hits_before = closure_cache().stats().hits;
        let second = run_on_source(&cmd, POLICY);
        assert_eq!(first, second);
        assert!(
            closure_cache().stats().hits > hits_before,
            "second identical check must be served from the cache"
        );
    }

    #[test]
    fn parallel_check_is_byte_identical() {
        let serial = Command::Check {
            file: "-".into(),
            explain: true,
            jobs: 1,
            full_saturation: false,
            certify: false,
            stream: false,
            ndjson: false,
        };
        let parallel = Command::Check {
            file: "-".into(),
            explain: true,
            jobs: 4,
            full_saturation: false,
            certify: false,
            stream: false,
            ndjson: false,
        };
        assert_eq!(
            run_on_source(&serial, POLICY),
            run_on_source(&parallel, POLICY),
            "--jobs must not change stdout or the exit code"
        );
        // Same under instrumentation (stderr timings differ, stdout not).
        let obs = ObsOptions {
            metrics: Some(MetricsFormat::Json),
            trace: Some(TraceOptions::default()),
        };
        let a = run_on_source_with_obs(&serial, POLICY, &obs);
        let b = run_on_source_with_obs(&parallel, POLICY, &obs);
        assert_eq!(a.stdout, b.stdout);
        assert_eq!(a.code, b.code);
    }

    #[test]
    fn obs_flag_parsing() {
        let (cmd, obs) =
            parse_args_with_obs(&s(&["check", "p.sfl", "--metrics=json", "--trace"])).unwrap();
        assert_eq!(
            cmd,
            Command::Check {
                file: "p.sfl".into(),
                explain: false,
                jobs: 1,
                full_saturation: false,
                certify: false,
                stream: false,
                ndjson: false,
            }
        );
        assert_eq!(obs.metrics, Some(MetricsFormat::Json));
        assert_eq!(obs.trace, Some(TraceOptions::default()));

        let (_, obs) = parse_args_with_obs(&s(&["check", "p.sfl", "--metrics"])).unwrap();
        assert_eq!(obs.metrics, Some(MetricsFormat::Text));
        let (_, obs) = parse_args_with_obs(&s(&["check", "p.sfl", "--metrics=text"])).unwrap();
        assert_eq!(obs.metrics, Some(MetricsFormat::Text));

        // --trace=FILE routes to the file; --trace-format selects chrome.
        let (_, obs) = parse_args_with_obs(&s(&[
            "check",
            "p.sfl",
            "--trace=out.trace",
            "--trace-format=chrome",
        ]))
        .unwrap();
        assert_eq!(
            obs.trace,
            Some(TraceOptions {
                file: Some("out.trace".into()),
                format: TraceFormat::Chrome,
            })
        );
        let (_, obs) =
            parse_args_with_obs(&s(&["check", "p.sfl", "--trace", "--trace-format=jsonl"]))
                .unwrap();
        assert_eq!(
            obs.trace,
            Some(TraceOptions {
                file: None,
                format: TraceFormat::Jsonl,
            })
        );

        // No obs flags: defaults off, plain parsing unchanged.
        let (cmd, obs) = parse_args_with_obs(&s(&["--help"])).unwrap();
        assert_eq!(cmd, Command::Help);
        assert!(obs.is_off());

        assert!(parse_args_with_obs(&s(&["check", "p.sfl", "--metrics=xml"])).is_err());
        // An empty file, an unknown format, or --trace-format without
        // --trace are all usage errors.
        assert!(parse_args_with_obs(&s(&["check", "p.sfl", "--trace="])).is_err());
        assert!(
            parse_args_with_obs(&s(&["check", "p.sfl", "--trace", "--trace-format=xml"])).is_err()
        );
        assert!(parse_args_with_obs(&s(&["check", "p.sfl", "--trace-format=chrome"])).is_err());
    }

    #[test]
    fn metrics_go_to_stderr_and_stdout_is_stable() {
        let cmd = Command::Check {
            file: "-".into(),
            explain: false,
            jobs: 1,
            full_saturation: false,
            certify: false,
            stream: false,
            ndjson: false,
        };
        let (plain, plain_code) = run_on_source(&cmd, POLICY);
        // Metrics on + trace without a file: the trace is dropped, stderr
        // holds the metrics report alone — no interleaving.
        let out = run_on_source_with_obs(
            &cmd,
            POLICY,
            &ObsOptions {
                metrics: Some(MetricsFormat::Text),
                trace: Some(TraceOptions::default()),
            },
        );
        assert_eq!(out.stdout, plain, "stdout must stay diff-stable");
        assert_eq!(out.code, plain_code);
        assert!(out.stderr.contains("closure.terms.total"));
        assert!(out.stderr.contains("-- timings"));
        assert!(
            !out.stderr.contains("\"ph\""),
            "trace events must not interleave with metrics:\n{}",
            out.stderr
        );
        assert!(out.trace_output.is_none(), "no file target, no file output");
        // Trace alone (no file): stderr is pure JSONL trace events.
        let traced = run_on_source_with_obs(
            &cmd,
            POLICY,
            &ObsOptions {
                metrics: None,
                trace: Some(TraceOptions::default()),
            },
        );
        assert_eq!(traced.stdout, plain);
        assert!(!traced.stderr.is_empty());
        for line in traced.stderr.lines() {
            let ev = Json::parse(line).expect("each stderr line is one JSON trace event");
            assert!(ev.get("name").is_some() && ev.get("ph").is_some());
        }
        // Trace to a file: stderr empty, events in trace_output instead.
        let to_file = run_on_source_with_obs(
            &cmd,
            POLICY,
            &ObsOptions {
                metrics: Some(MetricsFormat::Text),
                trace: Some(TraceOptions {
                    file: Some("t.jsonl".into()),
                    format: TraceFormat::Jsonl,
                }),
            },
        );
        let blob = to_file
            .trace_output
            .expect("file target captures the trace");
        for line in blob.lines() {
            assert!(Json::parse(line).is_ok(), "bad trace line: {line}");
        }
        assert!(!to_file.stderr.contains("\"ph\""));
        // Off = byte-identical with empty stderr.
        let off = run_on_source_with_obs(&cmd, POLICY, &ObsOptions::default());
        assert_eq!(off.stdout, plain);
        assert!(off.stderr.is_empty());
    }

    #[test]
    fn metrics_json_is_valid_and_complete() {
        use secflow_obs::Json;
        let cmd = Command::Check {
            file: "-".into(),
            explain: false,
            jobs: 1,
            full_saturation: false,
            certify: false,
            stream: false,
            ndjson: false,
        };
        let out = run_on_source_with_obs(
            &cmd,
            POLICY,
            &ObsOptions {
                metrics: Some(MetricsFormat::Json),
                trace: None,
            },
        );
        let doc = Json::parse(&out.stderr).expect("stderr is one valid JSON document");
        let counters = doc.get("counters").expect("counters object");
        // Per-capability term counts, rule firings, fixpoint rounds.
        assert!(
            counters
                .get("closure.terms.ti")
                .and_then(Json::as_u64)
                .unwrap()
                > 0
        );
        assert!(
            counters
                .get("closure.terms.eq")
                .and_then(Json::as_u64)
                .unwrap()
                > 0
        );
        assert!(
            counters
                .get("closure.rounds")
                .and_then(Json::as_u64)
                .unwrap()
                > 0
        );
        assert!(
            counters
                .get("closure.rule.axiom")
                .and_then(Json::as_u64)
                .unwrap()
                > 0
        );
        assert_eq!(
            counters.get("analysis.requirements").and_then(Json::as_u64),
            Some(2)
        );
        // Closure-cache counters (lifetime totals), shard layout, batch
        // scheduler steals, and occupancy gauges.
        for counter in [
            "cache.hits",
            "cache.misses",
            "cache.union_recomputes",
            "cache.evictions",
            "cache.shard.count",
            "batch.steals",
        ] {
            assert!(
                counters.get(counter).and_then(Json::as_u64).is_some(),
                "missing counter {counter}"
            );
        }
        assert!(
            counters
                .get("cache.shard.count")
                .and_then(Json::as_u64)
                .unwrap()
                > 0
        );
        let gauges = doc.get("gauges").expect("gauges object");
        assert!(gauges.get("cache.occupancy").is_some());
        assert!(gauges.get("cache.capacity").is_some());
        assert!(gauges.get("cache.shard.max_len").is_some());
        // Per-phase timings.
        let spans = doc.get("spans_ms").expect("spans object");
        for phase in ["parse", "typecheck", "unfold", "closure", "check"] {
            assert!(spans.get(phase).is_some(), "missing span {phase}");
        }
    }

    #[test]
    fn metrics_on_non_check_commands() {
        let cmd = Command::Unfold {
            file: "-".into(),
            user: "clerk".into(),
        };
        let (plain, _) = run_on_source(&cmd, POLICY);
        let out = run_on_source_with_obs(
            &cmd,
            POLICY,
            &ObsOptions {
                metrics: Some(MetricsFormat::Text),
                trace: None,
            },
        );
        assert_eq!(out.stdout, plain);
        assert!(out.stderr.contains("unfold"));
        // Parse errors still exit 3 with the metrics facility on.
        let bad = run_on_source_with_obs(
            &Command::Fmt { file: "-".into() },
            "class C { x: bogus_type }",
            &ObsOptions {
                metrics: Some(MetricsFormat::Text),
                trace: None,
            },
        );
        assert_eq!(bad.code, exit::INPUT);
        assert!(bad.stdout.contains("error"));
    }

    #[test]
    fn check_flags_the_flaw_and_exits_one() {
        let cmd = Command::Check {
            file: "-".into(),
            explain: false,
            jobs: 1,
            full_saturation: false,
            certify: false,
            stream: false,
            ndjson: false,
        };
        let (report, code) = run_on_source(&cmd, POLICY);
        assert_eq!(code, 1);
        assert!(report.contains("FLAW  (clerk, r_salary(x):ti)"));
        assert!(report.contains("ok    (safe_clerk, r_salary(x):ti)"));
        assert!(report.contains("2 requirement(s), 1 violated"));
    }

    #[test]
    fn check_explain_prints_a_derivation() {
        let cmd = Command::Check {
            file: "-".into(),
            explain: true,
            jobs: 1,
            full_saturation: false,
            certify: false,
            stream: false,
            ndjson: false,
        };
        let (report, code) = run_on_source(&cmd, POLICY);
        assert_eq!(code, 1);
        assert!(report.contains("witness ti["));
        assert!(report.contains("(axiom for =)"));
    }

    #[test]
    fn unfold_prints_numbered_program() {
        let cmd = Command::Unfold {
            file: "-".into(),
            user: "clerk".into(),
        };
        let (report, code) = run_on_source(&cmd, POLICY);
        assert_eq!(code, 0);
        assert!(report.contains("checkBudget: 5>="));
        assert!(report.contains("occurrences of r_salary: 1"));

        let cmd = Command::Unfold {
            file: "-".into(),
            user: "ghost".into(),
        };
        let (report, code) = run_on_source(&cmd, POLICY);
        assert_eq!(code, exit::INPUT);
        assert!(report.contains("unknown user"));
    }

    #[test]
    fn attack_realises_the_flaw() {
        // Total inference over unbounded integers needs bracketing probes:
        // two write+probe rounds, i.e. four steps.
        let cmd = Command::Attack {
            file: "-".into(),
            steps: 4,
        };
        let (report, code) = run_on_source(&cmd, POLICY);
        assert_eq!(code, 1);
        assert!(report.contains("REALISED (clerk, r_salary(x):ti)"));
        assert!(report.contains("not realised (safe_clerk, r_salary(x):ti)"));
    }

    #[test]
    fn fix_suggests_the_papers_repair() {
        let cmd = Command::Fix { file: "-".into() };
        let (report, code) = run_on_source(&cmd, POLICY);
        assert_eq!(code, 1);
        assert!(report.contains("FLAW  (clerk, r_salary(x):ti)"));
        assert!(report.contains("revoke {w_budget}"));
        assert!(report.contains("ok    (safe_clerk, r_salary(x):ti)"));
    }

    #[test]
    fn fmt_round_trips() {
        let cmd = Command::Fmt { file: "-".into() };
        let (report, code) = run_on_source(&cmd, POLICY);
        assert_eq!(code, 0);
        // The pretty-printed policy re-parses and re-checks.
        load_str(&report).unwrap();
    }

    #[test]
    fn input_errors_exit_three() {
        let cmd = Command::Check {
            file: "-".into(),
            explain: false,
            jobs: 1,
            full_saturation: false,
            certify: false,
            stream: false,
            ndjson: false,
        };
        let (report, code) = run_on_source(&cmd, "class C { x: bogus_type }");
        assert_eq!(code, exit::INPUT);
        assert!(report.contains("error"));
    }

    #[test]
    fn certify_flag_parsing() {
        assert_eq!(
            parse_args(&s(&["check", "p.sfl", "--certify"])),
            Ok(Command::Check {
                file: "p.sfl".into(),
                explain: false,
                jobs: 1,
                full_saturation: false,
                certify: true,
                stream: false,
                ndjson: false,
            })
        );
        // Unknown check flags mention --certify among the accepted set.
        let err = parse_args(&s(&["check", "p.sfl", "--certify-all"])).unwrap_err();
        assert!(err.contains("--certify"), "{err}");
    }

    #[test]
    fn certify_revalidates_and_appends_a_summary() {
        let plain = Command::Check {
            file: "-".into(),
            explain: false,
            jobs: 1,
            full_saturation: false,
            certify: false,
            stream: false,
            ndjson: false,
        };
        let certified = Command::Check {
            file: "-".into(),
            explain: false,
            jobs: 1,
            full_saturation: false,
            certify: true,
            stream: false,
            ndjson: false,
        };
        let (plain_out, plain_code) = run_on_source(&plain, POLICY);
        let (out, code) = run_on_source(&certified, POLICY);
        // Verdict lines and exit code are unchanged; one summary line is
        // appended.
        assert_eq!(code, plain_code);
        assert!(out.starts_with(&plain_out), "verdict lines must not change");
        assert!(
            out.contains("certified: ") && out.contains("across 2 closure(s)"),
            "missing certify summary: {out}"
        );
        // The instrumented path additionally surfaces per-rule check
        // counters in the metrics report.
        let obs = run_on_source_with_obs(
            &certified,
            POLICY,
            &ObsOptions {
                metrics: Some(MetricsFormat::Json),
                trace: None,
            },
        );
        assert_eq!(obs.stdout, out, "metrics must not change stdout");
        assert!(
            obs.stderr.contains("checker.rule.axiom"),
            "metrics missing checker counters: {}",
            obs.stderr
        );
    }

    #[test]
    fn corrupted_proofs_fail_certification_with_exit_four() {
        let schema = load_str(POLICY).unwrap();
        let mut outcome = check_batch(&schema, false, 1, false, true, false);
        // Corrupt one recorded derivation in the first group's closure: the
        // independent checker must reject it and the CLI must map that to
        // the dedicated exit code.
        let (_, closure) = outcome.groups[0].artifacts.as_mut().unwrap();
        let t = closure
            .iter()
            .find(|t| matches!(t, secflow::Term::Ta(_)))
            .expect("closure has a ta term");
        // `rule for =` can only conclude an equality, never a `ta` term.
        assert!(closure.replace_proof(&t, "rule for =", vec![]));
        let mut out = String::new();
        let code = match certify_outcome(&outcome, &mut out) {
            Ok(_) => panic!("corrupted outcome certified: {out}"),
            Err(code) => code,
        };
        assert_eq!(code, exit::CERTIFY);
        assert!(
            out.contains("certification FAILED for user "),
            "missing failure report: {out}"
        );
    }

    #[test]
    fn certify_composes_with_explain_and_jobs() {
        let cmd = Command::Check {
            file: "-".into(),
            explain: true,
            jobs: 4,
            full_saturation: true,
            certify: true,
            stream: false,
            ndjson: false,
        };
        let (out, code) = run_on_source(&cmd, POLICY);
        assert_eq!(code, exit::VIOLATION);
        assert!(out.contains("witness ti["));
        assert!(out.contains("certified: "));
    }

    fn audit_cmd() -> Command {
        audit_cmd_with(AuditFormat::Text, None)
    }

    fn audit_cmd_with(format: AuditFormat, severity: Option<Severity>) -> Command {
        Command::Audit {
            file: "-".into(),
            format,
            severity,
            mode: WalkMode::Backward,
            max_depth: 64,
            max_paths: 16,
            jobs: 1,
        }
    }

    #[test]
    fn audit_flag_parsing() {
        assert_eq!(
            parse_args(&s(&["audit", "p.sfl"])),
            Ok(Command::Audit {
                file: "p.sfl".into(),
                format: AuditFormat::Text,
                severity: None,
                mode: WalkMode::Backward,
                max_depth: 64,
                max_paths: 16,
                jobs: 1,
            })
        );
        assert_eq!(
            parse_args(&s(&[
                "audit",
                "p.sfl",
                "--format=json",
                "--severity=high",
                "--mode=complete",
                "--max-depth",
                "8",
                "--max-paths",
                "4",
                "--jobs",
                "2",
            ])),
            Ok(Command::Audit {
                file: "p.sfl".into(),
                format: AuditFormat::Json,
                severity: Some(Severity::High),
                mode: WalkMode::Complete,
                max_depth: 8,
                max_paths: 4,
                jobs: 2,
            })
        );
        assert!(parse_args(&s(&["audit"])).is_err());
        assert!(parse_args(&s(&["audit", "p.sfl", "--format=yaml"])).is_err());
        assert!(parse_args(&s(&["audit", "p.sfl", "--severity=urgent"])).is_err());
        assert!(parse_args(&s(&["audit", "p.sfl", "--mode=sideways"])).is_err());
        assert!(parse_args(&s(&["audit", "p.sfl", "--jobs", "0"])).is_err());
        let err = parse_args(&s(&["audit", "p.sfl", "--explain"])).unwrap_err();
        assert!(err.contains("--severity"), "{err}");
    }

    #[test]
    fn audit_text_reports_paths_and_exits_one() {
        let (out, code) = run_on_source(&audit_cmd(), POLICY);
        assert_eq!(code, exit::VIOLATION);
        assert!(out.contains("AUDIT"), "{out}");
        assert!(out.contains("FLAW  (clerk, r_salary(x):ti)"));
        assert!(out.contains("ok    (safe_clerk, r_salary(x):ti)"));
        assert!(out.contains("<- sink"));
        assert!(out.contains("<- source"));
        assert!(out.contains("severity "));
        assert!(out.contains("certified: "), "audit must certify: {out}");
    }

    #[test]
    fn audit_clean_policy_exits_zero() {
        let clean = r#"
            class Broker { salary: int, budget: int }
            fn checkBudget(b: Broker): bool { r_budget(b) >= r_salary(b) }
            user safe_clerk { checkBudget }
            require (safe_clerk, r_salary(x) : ti)
        "#;
        let (out, code) = run_on_source(&audit_cmd(), clean);
        assert_eq!(code, exit::OK, "{out}");
        assert!(out.contains("ok    "));
        assert!(out.contains("0 flaw path(s)"));
        // JSON agrees.
        let (out, code) = run_on_source(&audit_cmd_with(AuditFormat::Json, None), clean);
        assert_eq!(code, exit::OK);
        let doc = Json::parse(&out).unwrap();
        assert_eq!(doc.get("violated").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn audit_json_is_schema_versioned_and_complete() {
        let (out, code) = run_on_source(&audit_cmd_with(AuditFormat::Json, None), POLICY);
        assert_eq!(code, exit::VIOLATION);
        let doc = Json::parse(&out).expect("stdout is one valid JSON document");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(AUDIT_SCHEMA));
        assert_eq!(doc.get("requirements").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("violated").and_then(Json::as_u64), Some(1));
        let certified = doc.get("certified").expect("certified object");
        assert!(certified.get("derivations").and_then(Json::as_u64).unwrap() > 0);
        let violations = doc.get("violations").and_then(Json::as_arr).unwrap();
        assert_eq!(violations.len(), 1);
        let v = &violations[0];
        assert_eq!(
            v.get("requirement").and_then(Json::as_str),
            Some("(clerk, r_salary(x):ti)")
        );
        let witnesses = v.get("witnesses").and_then(Json::as_arr).unwrap();
        assert!(!witnesses.is_empty());
        for w in witnesses {
            let paths = w.get("paths").and_then(Json::as_arr).unwrap();
            assert!(!paths.is_empty(), "violated witness must have provenance");
            for p in paths {
                let steps = p.get("steps").and_then(Json::as_arr).unwrap();
                assert!(!steps.is_empty());
                // Backward mode: first step is the sink, last the source.
                assert_eq!(
                    steps[0].get("term").and_then(Json::as_str),
                    p.get("sink").and_then(Json::as_str)
                );
                assert_eq!(
                    steps[steps.len() - 1].get("term").and_then(Json::as_str),
                    p.get("source").and_then(Json::as_str)
                );
            }
        }
        // The audit bypasses the closure cache, and says so.
        assert_eq!(doc.get("cache"), Some(&Json::Null));
        let summary = doc.get("summary").expect("summary object");
        assert!(summary.get("paths").and_then(Json::as_u64).unwrap() > 0);
    }

    #[test]
    fn audit_severity_filter_drops_paths_not_verdicts() {
        let all = audit_cmd_with(AuditFormat::Json, None);
        let filtered = audit_cmd_with(AuditFormat::Json, Some(Severity::Critical));
        let (out_all, code_all) = run_on_source(&all, POLICY);
        let (out_f, code_f) = run_on_source(&filtered, POLICY);
        assert_eq!(code_all, exit::VIOLATION);
        assert_eq!(code_f, code_all, "the filter must never change exit codes");
        let n = |out: &str| {
            Json::parse(out)
                .unwrap()
                .get("summary")
                .and_then(|s| s.get("paths"))
                .and_then(Json::as_u64)
                .unwrap()
        };
        assert!(n(&out_f) <= n(&out_all));
        assert_eq!(
            Json::parse(&out_f)
                .unwrap()
                .get("violated")
                .and_then(Json::as_u64),
            Some(1),
            "verdicts are unaffected by the path filter"
        );
    }

    #[test]
    fn audit_bad_input_exits_three() {
        let (out, code) = run_on_source(&audit_cmd(), "class C { x: bogus }");
        assert_eq!(code, exit::INPUT);
        assert!(out.contains("error"));
    }

    #[test]
    fn audit_rejects_a_corrupted_proof_store() {
        let schema = load_str(POLICY).unwrap();
        let mut outcome = audit_batch(&schema, 1);
        let (_, closure) = outcome.groups[0].artifacts.as_mut().unwrap();
        let t = closure
            .iter()
            .find(|t| matches!(t, secflow::Term::Ta(_)))
            .expect("closure has a ta term");
        assert!(closure.replace_proof(&t, "rule for =", vec![]));
        let opts = AuditOptions {
            policy: "-".into(),
            format: AuditFormat::Json,
            severity: None,
            provenance: ProvenanceOptions::default(),
        };
        let (out, code) = render_audit(&schema, &outcome, &opts);
        assert_eq!(code, exit::CERTIFY);
        let doc = Json::parse(&out).unwrap();
        assert_eq!(doc.get("certified"), Some(&Json::Bool(false)));
        assert!(doc
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("certification FAILED"));
        // No flaw paths may be reported from an uncertified proof store.
        assert!(doc.get("violations").is_none());
    }

    #[test]
    fn audit_emits_trace_and_metrics_without_interleaving() {
        let out = run_on_source_with_obs(
            &audit_cmd(),
            POLICY,
            &ObsOptions {
                metrics: Some(MetricsFormat::Json),
                trace: Some(TraceOptions {
                    file: Some("t.json".into()),
                    format: TraceFormat::Chrome,
                }),
            },
        );
        assert_eq!(out.code, exit::VIOLATION);
        let trace = out.trace_output.expect("chrome trace captured");
        let doc = Json::parse(&trace).expect("chrome trace is valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert!(!events.is_empty());
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("audit")));
        // Metrics remain a single valid JSON document on stderr.
        let metrics = Json::parse(&out.stderr).expect("stderr is one JSON document");
        assert!(metrics.get("counters").is_some());
    }

    // -----------------------------------------------------------------
    // serve — the resident incremental session
    // -----------------------------------------------------------------

    #[test]
    fn serve_arg_parsing() {
        assert_eq!(
            parse_args(&s(&["serve", "p.sfl"])),
            Ok(Command::Serve {
                file: "p.sfl".into()
            })
        );
        assert!(parse_args(&s(&["serve"])).is_err());
        assert!(parse_args(&s(&["serve", "p.sfl", "--jobs", "2"])).is_err());
        assert!(parse_args(&s(&["serve", "p.sfl", "extra.sfl"])).is_err());
    }

    /// Run a request script through a fresh session, parsing every NDJSON
    /// response line.
    fn serve_lines(requests: &[&str]) -> (Vec<Json>, i32) {
        let schema = load_str(POLICY).expect("test policy loads");
        let (out, code) = serve_session(&schema, requests.iter().copied());
        let lines = out
            .lines()
            .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad NDJSON line `{l}`: {e}")))
            .collect();
        (lines, code)
    }

    fn delta_statuses(obj: &Json, key: &str) -> Vec<(u64, String)> {
        obj.get(key)
            .and_then(Json::as_arr)
            .expect("verdict array")
            .iter()
            .map(|v| {
                (
                    v.get("requirement").and_then(Json::as_u64).expect("index"),
                    v.get("status")
                        .and_then(Json::as_str)
                        .expect("status")
                        .to_owned(),
                )
            })
            .collect()
    }

    #[test]
    fn serve_streams_verdict_deltas_for_edits() {
        let (lines, code) = serve_lines(&[
            r#"{"op":"check","user":"clerk"}"#,
            r#"{"op":"revoke","user":"clerk","fn":"w_budget"}"#,
            r#"{"op":"grant","user":"clerk","fn":"w_budget"}"#,
            r#"{"op":"stats"}"#,
            r#"{"op":"shutdown"}"#,
        ]);
        assert_eq!(code, exit::OK);
        assert_eq!(lines.len(), 6, "ready + 5 responses");
        assert!(lines[0].get("ready").is_some());

        // clerk holds {checkBudget, w_budget}: requirement 0 is violated.
        assert_eq!(
            delta_statuses(&lines[1], "verdicts"),
            vec![(0, "violated".to_owned())]
        );

        // Revoking w_budget makes clerk identical to safe_clerk: the
        // verdict flips, and the flip is the only delta reported.
        let revoke = &lines[2];
        assert_eq!(revoke.get("changed"), Some(&Json::Bool(true)));
        assert!(revoke.get("deleted").and_then(Json::as_u64).unwrap() > 0);
        assert_eq!(
            delta_statuses(revoke, "deltas"),
            vec![(0, "satisfied".to_owned())]
        );

        // Granting it back flips the verdict again, with occurrences.
        let grant = &lines[3];
        assert_eq!(grant.get("changed"), Some(&Json::Bool(true)));
        assert_eq!(
            delta_statuses(grant, "deltas"),
            vec![(0, "violated".to_owned())]
        );
        let delta = &grant.get("deltas").and_then(Json::as_arr).unwrap()[0];
        assert!(delta.get("occurrences").and_then(Json::as_u64).unwrap() > 0);

        let stats = lines[4].get("stats").expect("stats record");
        assert_eq!(stats.get("resident").and_then(Json::as_u64), Some(1));
        assert!(stats.get("resident_terms").and_then(Json::as_u64).unwrap() > 0);
        assert!(stats.get("cache").is_some());

        let shutdown = lines[5].get("shutdown").expect("shutdown record");
        assert_eq!(shutdown.get("requests").and_then(Json::as_u64), Some(5));
        assert_eq!(shutdown.get("edits").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn serve_noop_edit_reports_no_deltas() {
        let (lines, code) = serve_lines(&[
            r#"{"op":"check","user":"clerk"}"#,
            r#"{"op":"grant","user":"clerk","fn":"checkBudget"}"#,
        ]);
        assert_eq!(code, exit::OK);
        let grant = &lines[2];
        assert_eq!(grant.get("changed"), Some(&Json::Bool(false)));
        assert_eq!(grant.get("deltas").and_then(Json::as_arr), Some(&[][..]));
        // EOF without an explicit shutdown request still closes cleanly.
        assert!(lines[3].get("shutdown").is_some());
    }

    #[test]
    fn serve_bad_requests_error_and_session_continues() {
        let (lines, code) = serve_lines(&[
            "not json at all",
            r#"{"op":"zap"}"#,
            r#"{"op":"check"}"#,
            r#"{"op":"check","user":"nobody"}"#,
            r#"{"op":"grant","user":"clerk","fn":"no_such_fn"}"#,
            r#"{"op":"check","user":"clerk","extra":42}"#,
            r#"{"op":"check","user":"clerk"}"#,
        ]);
        assert_eq!(code, exit::OK, "request errors never kill the session");
        for (i, line) in lines[1..7].iter().enumerate() {
            let msg = line
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or_else(|| panic!("line {} should be an error record", i + 1));
            assert!(!msg.is_empty());
            assert_eq!(
                line.get("request").and_then(Json::as_u64),
                Some(i as u64 + 1),
                "error records carry the request sequence number"
            );
        }
        // The failed grant was transactional: the follow-up check still
        // answers, and with the original (violated) verdict.
        assert_eq!(
            delta_statuses(&lines[7], "verdicts"),
            vec![(0, "violated".to_owned())]
        );
        assert!(lines[8].get("shutdown").is_some());
    }

    #[test]
    fn serve_edits_match_batch_verdicts_for_edited_caps() {
        // A session that revokes w_budget from clerk must report exactly
        // the statuses a from-scratch batch run over the edited policy
        // reports (safe_clerk *is* that edited policy, statically).
        let (lines, _) = serve_lines(&[
            r#"{"op":"revoke","user":"clerk","fn":"w_budget"}"#,
            r#"{"op":"check","user":"clerk"}"#,
            r#"{"op":"check","user":"safe_clerk"}"#,
        ]);
        let clerk = delta_statuses(&lines[2], "verdicts");
        let safe = delta_statuses(&lines[3], "verdicts");
        assert_eq!(clerk[0].1, safe[0].1, "edited clerk ≡ safe_clerk");
        assert_eq!(clerk[0].1, "satisfied");
    }
}
