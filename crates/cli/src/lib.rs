//! # secflow-cli
//!
//! The command-line front end. All behaviour lives here (unit-testable);
//! `main.rs` is a thin argument shim.
//!
//! ```text
//! secflow check  policy.sfl [--explain]        # run every `require`
//! secflow unfold policy.sfl --user clerk       # print S'(F)
//! secflow attack policy.sfl [--steps N]        # bounded concrete attacker
//! secflow fix    policy.sfl                    # minimal revocation repairs
//! secflow fmt    policy.sfl                    # parse + pretty-print
//! ```
//!
//! Exit codes: 0 = all requirements satisfied, 1 = at least one violated,
//! 2 = usage / parse / type errors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use oodb_lang::{check_schema, parse_schema, Schema};
use secflow::algorithm::{analyze, occurrences};
use secflow::closure::Closure;
use secflow::report::{render_derivation, render_term, Verdict};
use secflow::unfold::NProgram;
use secflow_dynamic::attack_requirement;
use secflow_dynamic::strategy::StrategySpec;
use secflow_dynamic::AttackerConfig;
use std::fmt::Write as _;

/// A parsed command line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// `check <file> [--explain]`
    Check {
        /// Policy file path.
        file: String,
        /// Print derivations for each violation.
        explain: bool,
    },
    /// `unfold <file> --user <name>`
    Unfold {
        /// Policy file path.
        file: String,
        /// User whose capability list to unfold.
        user: String,
    },
    /// `attack <file> [--steps N]`
    Attack {
        /// Policy file path.
        file: String,
        /// Probe-sequence bound.
        steps: usize,
    },
    /// `fix <file>`
    Fix {
        /// Policy file path.
        file: String,
    },
    /// `fmt <file>`
    Fmt {
        /// Policy file path.
        file: String,
    },
    /// `--help` or no arguments.
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
secflow — static detection of security flaws in object-oriented databases
         (Tajima, SIGMOD 1996)

USAGE:
  secflow check  <policy-file> [--explain]   run every `require`; exit 1 on flaws
  secflow unfold <policy-file> --user <u>    print the numbered unfolding S'(F)
  secflow attack <policy-file> [--steps N]   try to realise each flaw concretely
  secflow fix    <policy-file>               suggest minimal revocations per flaw
  secflow fmt    <policy-file>               parse and pretty-print the policy

POLICY FILES contain class, fn, user and require declarations:

  class Broker { name: string, salary: int, budget: int }
  fn checkBudget(b: Broker): bool { r_budget(b) >= 10 * r_salary(b) }
  user clerk { checkBudget, w_budget }
  require (clerk, r_salary(x) : ti)
";

/// Parse a command line (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "-h" | "--help" | "help" => Ok(Command::Help),
        "check" => {
            let mut file = None;
            let mut explain = false;
            for a in it {
                match a.as_str() {
                    "--explain" => explain = true,
                    _ if file.is_none() && !a.starts_with('-') => file = Some(a.clone()),
                    other => return Err(format!("unexpected argument `{other}`")),
                }
            }
            let file = file.ok_or("check: missing policy file")?;
            Ok(Command::Check { file, explain })
        }
        "unfold" => {
            let mut file = None;
            let mut user = None;
            let mut args = it.peekable();
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--user" => {
                        user = Some(
                            args.next()
                                .ok_or("unfold: --user needs a value")?
                                .clone(),
                        )
                    }
                    _ if file.is_none() && !a.starts_with('-') => file = Some(a.clone()),
                    other => return Err(format!("unexpected argument `{other}`")),
                }
            }
            Ok(Command::Unfold {
                file: file.ok_or("unfold: missing policy file")?,
                user: user.ok_or("unfold: missing --user")?,
            })
        }
        "attack" => {
            let mut file = None;
            let mut steps = 2usize;
            let mut args = it.peekable();
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--steps" => {
                        steps = args
                            .next()
                            .ok_or("attack: --steps needs a value")?
                            .parse()
                            .map_err(|_| "attack: --steps must be a number")?;
                    }
                    _ if file.is_none() && !a.starts_with('-') => file = Some(a.clone()),
                    other => return Err(format!("unexpected argument `{other}`")),
                }
            }
            Ok(Command::Attack {
                file: file.ok_or("attack: missing policy file")?,
                steps,
            })
        }
        "fix" => {
            let file = it.next().ok_or("fix: missing policy file")?;
            Ok(Command::Fix { file: file.clone() })
        }
        "fmt" => {
            let file = it.next().ok_or("fmt: missing policy file")?;
            Ok(Command::Fmt { file: file.clone() })
        }
        other => Err(format!("unknown command `{other}` (try --help)")),
    }
}

/// Parse + type-check policy text (exposed for tests).
pub fn load_str(src: &str) -> Result<Schema, String> {
    let schema = parse_schema(src).map_err(|e| e.to_string())?;
    check_schema(&schema).map_err(|e| e.to_string())?;
    Ok(schema)
}

/// Run a command against policy *text*; returns (report, exit code).
pub fn run_on_source(cmd: &Command, src: &str) -> (String, i32) {
    match cmd {
        Command::Help => (USAGE.to_owned(), 0),
        Command::Fmt { .. } => match load_str(src) {
            Ok(schema) => (schema.to_string(), 0),
            Err(e) => (format!("error: {e}\n"), 2),
        },
        Command::Check { explain, .. } => match load_str(src) {
            Ok(schema) => check_report(&schema, *explain),
            Err(e) => (format!("error: {e}\n"), 2),
        },
        Command::Unfold { user, .. } => match load_str(src) {
            Ok(schema) => unfold_report(&schema, user),
            Err(e) => (format!("error: {e}\n"), 2),
        },
        Command::Attack { steps, .. } => match load_str(src) {
            Ok(schema) => attack_report(&schema, *steps),
            Err(e) => (format!("error: {e}\n"), 2),
        },
        Command::Fix { .. } => match load_str(src) {
            Ok(schema) => fix_report(&schema),
            Err(e) => (format!("error: {e}\n"), 2),
        },
    }
}

/// Run a command end-to-end (file IO included); returns (report, exit code).
pub fn run(cmd: &Command) -> (String, i32) {
    match cmd {
        Command::Help => (USAGE.to_owned(), 0),
        Command::Check { file, .. }
        | Command::Unfold { file, .. }
        | Command::Attack { file, .. }
        | Command::Fix { file }
        | Command::Fmt { file } => match std::fs::read_to_string(file) {
            Ok(src) => run_on_source(cmd, &src),
            Err(e) => (format!("error: cannot read `{file}`: {e}\n"), 2),
        },
    }
}

fn check_report(schema: &Schema, explain: bool) -> (String, i32) {
    let mut out = String::new();
    if schema.requirements.is_empty() {
        let _ = writeln!(out, "no `require` declarations in the policy — nothing to check");
        return (out, 0);
    }
    let mut violated = 0usize;
    for req in &schema.requirements {
        match analyze(schema, req) {
            Ok(Verdict::Satisfied) => {
                let _ = writeln!(out, "ok    {req}");
            }
            Ok(Verdict::Violated(violations)) => {
                violated += 1;
                let _ = writeln!(out, "FLAW  {req}  ({} occurrence(s))", violations.len());
                if explain {
                    // Reconstruct the program/closure for rendering.
                    if let Some(caps) = schema.user(&req.user) {
                        if let Ok(prog) = NProgram::unfold(schema, caps) {
                            if let Ok(closure) = Closure::compute(&prog) {
                                for v in &violations {
                                    for w in &v.witnesses {
                                        let _ = writeln!(
                                            out,
                                            "  witness {}",
                                            render_term(&prog, w)
                                        );
                                        let derivation =
                                            render_derivation(&prog, &closure, w);
                                        for line in derivation.lines() {
                                            let _ = writeln!(out, "    {line}");
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
            Err(e) => {
                let _ = writeln!(out, "error {req}: {e}");
                return (out, 2);
            }
        }
    }
    let _ = writeln!(
        out,
        "{} requirement(s), {} violated",
        schema.requirements.len(),
        violated
    );
    (out, i32::from(violated > 0))
}

fn unfold_report(schema: &Schema, user: &str) -> (String, i32) {
    let Some(caps) = schema.user_str(user) else {
        return (format!("error: unknown user `{user}`\n"), 2);
    };
    match NProgram::unfold(schema, caps) {
        Ok(prog) => {
            let mut out = String::new();
            let _ = writeln!(out, "S'(F) for {user} = {caps}:");
            for outer in &prog.outers {
                let _ = writeln!(out, "  {}: {}", outer.fn_ref, prog.render(outer.root));
            }
            let _ = writeln!(out, "{} numbered occurrences", prog.len());
            // Also list the occurrences of every required target for this
            // user, as orientation.
            for req in schema.requirements.iter().filter(|r| r.user.as_str() == user) {
                let occ = occurrences(&prog, &req.target);
                let _ = writeln!(out, "occurrences of {}: {}", req.target, occ.len());
            }
            (out, 0)
        }
        Err(e) => (format!("error: {e}\n"), 2),
    }
}

fn attack_report(schema: &Schema, steps: usize) -> (String, i32) {
    let mut out = String::new();
    if schema.requirements.is_empty() {
        let _ = writeln!(out, "no `require` declarations — nothing to attack");
        return (out, 0);
    }
    let cfg = AttackerConfig {
        strategies: StrategySpec {
            max_steps: steps,
            ..StrategySpec::default()
        },
        ..AttackerConfig::default()
    };
    let mut realised = 0usize;
    for req in &schema.requirements {
        match attack_requirement(schema, req, &cfg) {
            Ok(o) if o.achieved => {
                realised += 1;
                let _ = writeln!(
                    out,
                    "REALISED {req}\n  {}",
                    o.witness.map(|w| w.summary).unwrap_or_default()
                );
            }
            Ok(o) => {
                let _ = writeln!(
                    out,
                    "not realised {req}{}",
                    if o.skipped_shapes > 0 {
                        format!("  ({} shapes skipped by bounds)", o.skipped_shapes)
                    } else {
                        String::new()
                    }
                );
            }
            Err(e) => {
                let _ = writeln!(out, "error {req}: {e}");
            }
        }
    }
    let _ = writeln!(
        out,
        "{} requirement(s), {} realised within bounds",
        schema.requirements.len(),
        realised
    );
    (out, i32::from(realised > 0))
}

fn fix_report(schema: &Schema) -> (String, i32) {
    use secflow::advisor::{advise, Advice, AdvisorConfig};
    let mut out = String::new();
    if schema.requirements.is_empty() {
        let _ = writeln!(out, "no `require` declarations — nothing to fix");
        return (out, 0);
    }
    let mut flawed = 0usize;
    for req in &schema.requirements {
        match advise(schema, req, &AdvisorConfig::default()) {
            Ok(Advice::AlreadySatisfied) => {
                let _ = writeln!(out, "ok    {req}");
            }
            Ok(Advice::Repairs(repairs)) => {
                flawed += 1;
                let _ = writeln!(out, "FLAW  {req} — minimal repairs:");
                for r in repairs {
                    let _ = writeln!(out, "        {r}");
                }
            }
            Ok(Advice::BudgetExhausted(repairs)) => {
                flawed += 1;
                let _ = writeln!(
                    out,
                    "FLAW  {req} — search budget exhausted; repairs found so far:"
                );
                for r in repairs {
                    let _ = writeln!(out, "        {r}");
                }
            }
            Ok(Advice::Unrepairable) => {
                flawed += 1;
                let _ = writeln!(out, "FLAW  {req} — no revocation subset helps");
            }
            Err(e) => {
                let _ = writeln!(out, "error {req}: {e}");
                return (out, 2);
            }
        }
    }
    (out, i32::from(flawed > 0))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The unit-threshold variant: the attack subcommand's probe domain is
    // {0,1,2}, which can bracket `salary` but not `10 * salary`.
    const POLICY: &str = r#"
        class Broker { salary: int, budget: int }
        fn checkBudget(b: Broker): bool { r_budget(b) >= r_salary(b) }
        user clerk { checkBudget, w_budget }
        user safe_clerk { checkBudget }
        require (clerk, r_salary(x) : ti)
        require (safe_clerk, r_salary(x) : ti)
    "#;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn arg_parsing() {
        assert_eq!(parse_args(&[]), Ok(Command::Help));
        assert_eq!(parse_args(&s(&["--help"])), Ok(Command::Help));
        assert_eq!(
            parse_args(&s(&["check", "p.sfl", "--explain"])),
            Ok(Command::Check {
                file: "p.sfl".into(),
                explain: true
            })
        );
        assert_eq!(
            parse_args(&s(&["unfold", "p.sfl", "--user", "clerk"])),
            Ok(Command::Unfold {
                file: "p.sfl".into(),
                user: "clerk".into()
            })
        );
        assert_eq!(
            parse_args(&s(&["attack", "p.sfl", "--steps", "3"])),
            Ok(Command::Attack {
                file: "p.sfl".into(),
                steps: 3
            })
        );
        assert!(parse_args(&s(&["bogus"])).is_err());
        assert!(parse_args(&s(&["unfold", "p.sfl"])).is_err());
        assert!(parse_args(&s(&["attack", "p.sfl", "--steps", "x"])).is_err());
    }

    #[test]
    fn check_flags_the_flaw_and_exits_one() {
        let cmd = Command::Check {
            file: "-".into(),
            explain: false,
        };
        let (report, code) = run_on_source(&cmd, POLICY);
        assert_eq!(code, 1);
        assert!(report.contains("FLAW  (clerk, r_salary(x):ti)"));
        assert!(report.contains("ok    (safe_clerk, r_salary(x):ti)"));
        assert!(report.contains("2 requirement(s), 1 violated"));
    }

    #[test]
    fn check_explain_prints_a_derivation() {
        let cmd = Command::Check {
            file: "-".into(),
            explain: true,
        };
        let (report, code) = run_on_source(&cmd, POLICY);
        assert_eq!(code, 1);
        assert!(report.contains("witness ti["));
        assert!(report.contains("(axiom for =)"));
    }

    #[test]
    fn unfold_prints_numbered_program() {
        let cmd = Command::Unfold {
            file: "-".into(),
            user: "clerk".into(),
        };
        let (report, code) = run_on_source(&cmd, POLICY);
        assert_eq!(code, 0);
        assert!(report.contains("checkBudget: 5>="));
        assert!(report.contains("occurrences of r_salary: 1"));

        let cmd = Command::Unfold {
            file: "-".into(),
            user: "ghost".into(),
        };
        let (report, code) = run_on_source(&cmd, POLICY);
        assert_eq!(code, 2);
        assert!(report.contains("unknown user"));
    }

    #[test]
    fn attack_realises_the_flaw() {
        // Total inference over unbounded integers needs bracketing probes:
        // two write+probe rounds, i.e. four steps.
        let cmd = Command::Attack {
            file: "-".into(),
            steps: 4,
        };
        let (report, code) = run_on_source(&cmd, POLICY);
        assert_eq!(code, 1);
        assert!(report.contains("REALISED (clerk, r_salary(x):ti)"));
        assert!(report.contains("not realised (safe_clerk, r_salary(x):ti)"));
    }

    #[test]
    fn fix_suggests_the_papers_repair() {
        let cmd = Command::Fix { file: "-".into() };
        let (report, code) = run_on_source(&cmd, POLICY);
        assert_eq!(code, 1);
        assert!(report.contains("FLAW  (clerk, r_salary(x):ti)"));
        assert!(report.contains("revoke {w_budget}"));
        assert!(report.contains("ok    (safe_clerk, r_salary(x):ti)"));
    }

    #[test]
    fn fmt_round_trips() {
        let cmd = Command::Fmt { file: "-".into() };
        let (report, code) = run_on_source(&cmd, POLICY);
        assert_eq!(code, 0);
        // The pretty-printed policy re-parses and re-checks.
        load_str(&report).unwrap();
    }

    #[test]
    fn errors_exit_two() {
        let cmd = Command::Check {
            file: "-".into(),
            explain: false,
        };
        let (report, code) = run_on_source(&cmd, "class C { x: bogus_type }");
        assert_eq!(code, 2);
        assert!(report.contains("error"));
    }
}
