//! The inference system **I(E)** of Table 1, executable.
//!
//! `I(E)` formalises what a user can deduce from observing one execution
//! instance `E` of a function sequence: terms `[(ᵏe,…) ∈ S]` with explicit
//! value sets, and equalities `[ᵏe1 = ᵏe2]`, closed under *join* and
//! *projection* (Table 1, group 3), the equality rules (groups 2/4) and
//! the diagonal axiom `[e1 = e2] → [(e1,e2) ∈ {(v,v)}]` (group 5).
//!
//! Joins of explicit relations are exactly constraint propagation, so the
//! implementation is a propagation engine over one *instance*:
//!
//! * a **variable** per (probe step, numbered occurrence) with a finite
//!   candidate set (its values across the possible worlds — the bounded
//!   stand-in for `Dom(ᵏe)`);
//! * **pinning** constraints for what the user directly sees: constants,
//!   the arguments they supplied, the returned values of each probe;
//! * the **basic-function relations** `{(v1,v2,r) | fb(v1,v2) = r}` per
//!   application node, propagated as pairwise (path-consistency style)
//!   constraints between the siblings and the result;
//! * **equalities** from Table 1's syntactic rules: repeated argument
//!   variables, `let` bindings and bodies, attribute congruence, and the
//!   concrete write-read chains of the instance (a read is equal to the
//!   latest preceding write of the same attribute cell — the `k5 < k4`
//!   side condition made operational).
//!
//! After saturation: `ti[ᵏe]` iff its candidate set is a singleton
//! (Definition 4's `[ᵏe ∈ {v}]`), `pi[ᵏe]` iff the set shrank strictly
//! below its prior (the knowledge-gain reading used throughout
//! `secflow-dynamic`).
//!
//! The engine implements pairwise joins only (2-consistency); full I(E)
//! permits arbitrary-width joins. It is therefore a *lower bound* on I(E),
//! which the experiments use for the containment chain
//! `I(E)-bounded ⊆ possible-worlds ⊆ A(R)` (harness experiment E8).

use crate::eval::eval_outer;
use oodb_engine::Database;
use oodb_model::{Oid, Value};
use secflow::unfold::{ExprId, NKind, NProgram};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A variable of the instance: a numbered occurrence at one probe step.
pub type Site = (usize, ExprId);

/// The saturated deductions of `I(E)` for one instance.
#[derive(Debug)]
pub struct Deductions {
    prior: HashMap<Site, BTreeSet<Value>>,
    current: HashMap<Site, BTreeSet<Value>>,
    rounds: usize,
}

impl Deductions {
    /// `[ᵏe ∈ {v}]` deducible: total inferability (Definition 4).
    pub fn is_total(&self, site: Site) -> bool {
        self.current
            .get(&site)
            .map(|s| s.len() == 1)
            .unwrap_or(false)
    }

    /// The inferred exact value, when total.
    pub fn value(&self, site: Site) -> Option<&Value> {
        self.current
            .get(&site)
            .and_then(|s| if s.len() == 1 { s.iter().next() } else { None })
    }

    /// Strict knowledge gain: the candidate set shrank below its prior
    /// (partial inferability, Definition 5 in the knowledge-gain reading).
    pub fn is_partial(&self, site: Site) -> bool {
        match (self.prior.get(&site), self.current.get(&site)) {
            (Some(p), Some(c)) => !c.is_empty() && c.len() < p.len(),
            _ => false,
        }
    }

    /// Candidate set of a site after saturation.
    pub fn candidates(&self, site: Site) -> Option<&BTreeSet<Value>> {
        self.current.get(&site)
    }

    /// Propagation rounds until fixpoint (for the experiments).
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

/// One concrete probe: which outer function, with which argument values.
#[derive(Clone, Debug)]
pub struct Probe {
    /// Index into [`NProgram::outers`].
    pub outer: usize,
    /// Concrete argument values (the user knows these).
    pub args: Vec<Value>,
}

/// Run `I(E)` for the instance obtained by executing `probes` against
/// `world`, with `candidate_worlds` providing the finite priors (the world
/// itself must be among them).
///
/// Worlds whose execution diverges from the instance's *error pattern* are
/// excluded from priors (the user observes errors too).
pub fn infer(
    prog: &NProgram,
    probes: &[Probe],
    world: &Database,
    candidate_worlds: &[Database],
) -> Deductions {
    // ---- 1. Execute the instance on the real world and on every
    //         candidate world, recording all site values.
    let run = |db: &Database| -> Vec<Option<HashMap<ExprId, Value>>> {
        let mut db = db.clone();
        probes
            .iter()
            .map(|p| {
                eval_outer(&mut db, prog, p.outer, &p.args)
                    .ok()
                    .map(|(_, sites)| sites)
            })
            .collect()
    };
    let actual = run(world);
    let candidates: Vec<Vec<Option<HashMap<ExprId, Value>>>> =
        candidate_worlds.iter().map(run).collect();

    // ---- 2. Priors: the values every site takes across candidate worlds
    //         with the same error pattern.
    let error_pattern: Vec<bool> = actual.iter().map(Option::is_some).collect();
    let mut prior: HashMap<Site, BTreeSet<Value>> = HashMap::new();
    for cand in &candidates {
        let pattern: Vec<bool> = cand.iter().map(Option::is_some).collect();
        if pattern != error_pattern {
            continue;
        }
        for (t, step) in cand.iter().enumerate() {
            if let Some(sites) = step {
                for (e, v) in sites {
                    prior.entry((t, *e)).or_default().insert(v.clone());
                }
            }
        }
    }

    let mut current = prior.clone();
    let mut engine = Propagator {
        prog,
        probes,
        actual: &actual,
        current: &mut current,
    };
    engine.pin_observations();
    let equalities = engine.syntactic_equalities();
    let classes = equality_classes(&equalities);
    let rounds = engine.saturate(&equalities, &classes);

    Deductions {
        prior,
        current,
        rounds,
    }
}

/// Union-find closure of the equality edges: site → representative. Sites
/// not mentioned map to themselves.
fn equality_classes(equalities: &[(Site, Site)]) -> HashMap<Site, Site> {
    let mut parent: HashMap<Site, Site> = HashMap::new();
    fn find(parent: &mut HashMap<Site, Site>, x: Site) -> Site {
        let p = *parent.entry(x).or_insert(x);
        if p == x {
            return x;
        }
        let root = find(parent, p);
        parent.insert(x, root);
        root
    }
    for (a, b) in equalities {
        let ra = find(&mut parent, *a);
        let rb = find(&mut parent, *b);
        if ra != rb {
            parent.insert(ra, rb);
        }
    }
    let keys: Vec<Site> = parent.keys().copied().collect();
    for k in keys {
        find(&mut parent, k);
    }
    parent
}

struct Propagator<'a> {
    prog: &'a NProgram,
    probes: &'a [Probe],
    actual: &'a [Option<HashMap<ExprId, Value>>],
    current: &'a mut HashMap<Site, BTreeSet<Value>>,
}

impl Propagator<'_> {
    fn pin(&mut self, site: Site, v: Value) {
        let entry = self.current.entry(site).or_default();
        entry.retain(|x| *x == v);
        if entry.is_empty() {
            // The prior missed the actual value (can only happen when the
            // caller's candidate set omits the real world); keep it
            // consistent rather than empty.
            entry.insert(v);
        }
    }

    /// Table 1 group 1 axioms: what the user directly sees.
    fn pin_observations(&mut self) {
        for (t, probe) in self.probes.iter().enumerate() {
            let Some(sites) = &self.actual[t] else {
                continue;
            };
            let outer = &self.prog.outers[probe.outer];
            // Arguments: pinned at every occurrence of the argument
            // variable (the user supplied them).
            for e in self.prog.iter() {
                if self.prog.outer_index_of(e.id) != Some(probe.outer) {
                    continue;
                }
                match &e.kind {
                    NKind::ArgVar { param, .. } => {
                        if let Some(v) = probe.args.get(*param) {
                            self.pin((t, e.id), v.clone());
                        }
                    }
                    NKind::Const(l) => {
                        self.pin((t, e.id), l.to_value());
                    }
                    _ => {}
                }
            }
            // The returned value, when basic-typed (the paper's "entire
            // body of f_i … has a basic type" axiom).
            let root = self.prog.get(outer.root);
            if root.ty.is_basic() {
                if let Some(v) = sites.get(&outer.root) {
                    self.pin((t, outer.root), v.clone());
                }
            }
        }
    }

    /// Table 1 groups 2/4: equalities the user can recognise, including the
    /// instance's concrete write-read chains.
    fn syntactic_equalities(&self) -> Vec<(Site, Site)> {
        let mut eqs: Vec<(Site, Site)> = Vec::new();

        // let-bindings and bodies, argument-variable repetitions (within a
        // step), plus cross-step argument equality when the user passed the
        // same value.
        let mut arg_occurrences: Vec<(Site, usize, usize)> = Vec::new(); // (site, outer, param)
        for (t, probe) in self.probes.iter().enumerate() {
            if self.actual[t].is_none() {
                continue;
            }
            for e in self.prog.iter() {
                if self.prog.outer_index_of(e.id) != Some(probe.outer) {
                    continue;
                }
                match &e.kind {
                    NKind::LetVar { binding, .. } => {
                        eqs.push(((t, e.id), (t, *binding)));
                    }
                    NKind::Let { body, .. } => {
                        eqs.push(((t, e.id), (t, *body)));
                    }
                    NKind::ArgVar { outer, param, .. } => {
                        arg_occurrences.push(((t, e.id), *outer, *param));
                    }
                    _ => {}
                }
            }
        }
        // Two argument occurrences are equal when the user routed the same
        // value (§3.3: "passed values through the same from-clause
        // variable" — here, literally the same supplied value).
        for (i, (s1, o1, p1)) in arg_occurrences.iter().enumerate() {
            for (s2, o2, p2) in &arg_occurrences[i + 1..] {
                let v1 = self.probes[s1.0].args.get(*p1);
                let v2 = self.probes[s2.0].args.get(*p2);
                let _ = (o1, o2);
                if v1.is_some() && v1 == v2 {
                    eqs.push((*s1, *s2));
                }
            }
        }

        // Write-read chains over concrete attribute cells. Receivers are
        // concrete in the instance; evaluation order is node order within a
        // step, step order across steps.
        #[derive(Clone)]
        enum CellEvent {
            Write { site_val: Site },
            Read { site: Site },
        }
        let mut cells: BTreeMap<(Oid, String), Vec<CellEvent>> = BTreeMap::new();
        for (t, step) in self.actual.iter().enumerate() {
            let Some(sites) = step else { continue };
            let outer_idx = self.probes[t].outer;
            for e in self.prog.iter() {
                if self.prog.outer_index_of(e.id) != Some(outer_idx) {
                    continue;
                }
                match &e.kind {
                    NKind::Read(attr, recv) => {
                        if let Some(Value::Obj(oid)) = sites.get(recv) {
                            cells
                                .entry((*oid, attr.to_string()))
                                .or_default()
                                .push(CellEvent::Read { site: (t, e.id) });
                        }
                    }
                    NKind::Write(attr, recv, val) => {
                        if let Some(Value::Obj(oid)) = sites.get(recv) {
                            cells.entry((*oid, attr.to_string())).or_default().push(
                                CellEvent::Write {
                                    site_val: (t, *val),
                                },
                            );
                        }
                    }
                    _ => {}
                }
            }
        }
        for events in cells.values() {
            // Events were pushed in (step, node-id) order, which is
            // evaluation order. A read equals the latest preceding write's
            // value; two reads with the same latest write (or none) are
            // equal.
            let mut last_write: Option<Site> = None;
            let mut reads_since: Vec<Site> = Vec::new();
            for ev in events {
                match ev {
                    CellEvent::Write { site_val } => {
                        last_write = Some(*site_val);
                        reads_since.clear();
                    }
                    CellEvent::Read { site } => {
                        if let Some(w) = last_write {
                            eqs.push((*site, w));
                        }
                        for r in &reads_since {
                            eqs.push((*site, *r));
                        }
                        reads_since.push(*site);
                    }
                }
            }
        }
        eqs
    }

    /// Saturate: equality merges + pairwise propagation through every
    /// basic-function application, to fixpoint.
    fn saturate(&mut self, equalities: &[(Site, Site)], classes: &HashMap<Site, Site>) -> usize {
        let mut rounds = 0;
        loop {
            rounds += 1;
            let mut changed = false;

            // Equality: intersect both sides (Table 1 group 5 + joins).
            for (a, b) in equalities {
                let sa = self.current.get(a).cloned().unwrap_or_default();
                let sb = self.current.get(b).cloned().unwrap_or_default();
                if sa.is_empty() || sb.is_empty() {
                    continue;
                }
                let inter: BTreeSet<Value> = sa.intersection(&sb).cloned().collect();
                if inter.is_empty() {
                    continue; // defensive: never empty a domain
                }
                if inter != sa {
                    self.current.insert(*a, inter.clone());
                    changed = true;
                }
                if inter != sb {
                    self.current.insert(*b, inter);
                    changed = true;
                }
            }

            // Basic-function relations (Table 1 group 1 last axiom, joined
            // and projected pairwise).
            for (t, step) in self.actual.iter().enumerate() {
                if step.is_none() {
                    continue;
                }
                let outer_idx = self.probes[t].outer;
                for e in self.prog.iter() {
                    if self.prog.outer_index_of(e.id) != Some(outer_idx) {
                        continue;
                    }
                    if let NKind::Basic(op, args) = &e.kind {
                        changed |= self.propagate_fb(t, e.id, *op, args, classes);
                    }
                }
            }

            if !changed {
                return rounds;
            }
        }
    }

    fn propagate_fb(
        &mut self,
        t: usize,
        node: ExprId,
        op: oodb_lang::BasicOp,
        args: &[ExprId],
        classes: &HashMap<Site, Site>,
    ) -> bool {
        let arg_sets: Vec<BTreeSet<Value>> = args
            .iter()
            .map(|a| self.current.get(&(t, *a)).cloned().unwrap_or_default())
            .collect();
        let ret_set = self.current.get(&(t, node)).cloned().unwrap_or_default();
        if arg_sets.iter().any(BTreeSet::is_empty) || ret_set.is_empty() {
            return false;
        }

        // Materialise the relation restricted to current candidates.
        let mut tuples: Vec<(Vec<&Value>, Value)> = Vec::new();
        match arg_sets.len() {
            1 => {
                for a in &arg_sets[0] {
                    if let Ok(r) = oodb_engine::ops::eval_basic(op, std::slice::from_ref(a)) {
                        tuples.push((vec![a], r));
                    }
                }
            }
            2 => {
                // When the two arguments are known equal (Table 1's rule 5
                // joined with the dependency), restrict to the diagonal.
                let same = classes.get(&(t, args[0])).copied().unwrap_or((t, args[0]))
                    == classes.get(&(t, args[1])).copied().unwrap_or((t, args[1]));
                for a in &arg_sets[0] {
                    for b in &arg_sets[1] {
                        if same && a != b {
                            continue;
                        }
                        if let Ok(r) = oodb_engine::ops::eval_basic(op, &[a.clone(), b.clone()]) {
                            tuples.push((vec![a, b], r));
                        }
                    }
                }
            }
            _ => return false,
        }
        tuples.retain(|(_, r)| ret_set.contains(r));

        let mut changed = false;
        // Project back onto every column.
        for (i, a) in args.iter().enumerate() {
            let proj: BTreeSet<Value> = tuples.iter().map(|(vs, _)| vs[i].clone()).collect();
            if !proj.is_empty() && proj != arg_sets[i] {
                self.current.insert((t, *a), proj);
                changed = true;
            }
        }
        let proj_ret: BTreeSet<Value> = tuples.iter().map(|(_, r)| r.clone()).collect();
        if !proj_ret.is_empty() && proj_ret != ret_set {
            self.current.insert((t, node), proj_ret);
            changed = true;
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worlds::{enumerate_worlds, WorldSpec};
    use oodb_lang::parse_schema;
    use oodb_lang::Schema;

    fn setup(src: &str, user: &str) -> (Schema, NProgram, Vec<Database>) {
        let schema = parse_schema(src).unwrap();
        oodb_lang::check_schema(&schema).unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str(user).unwrap()).unwrap();
        let worlds = enumerate_worlds(
            &schema,
            &WorldSpec {
                objects_per_class: 1,
                int_domain: vec![0, 1, 2, 3],
                max_worlds: 4096,
            },
        )
        .unwrap();
        (schema, prog, worlds)
    }

    fn obj(db: &Database, class: &str) -> Value {
        Value::Obj(db.extent(&class.into())[0])
    }

    #[test]
    fn write_then_probe_pins_the_written_cell() {
        // w_a(o, 3) then getA(o): the read site equals the written value.
        let (_s, prog, worlds) = setup(
            r#"
            class C { a: int }
            fn getA(c: C): int { r_a(c) }
            user u { getA, w_a }
            "#,
            // outers: getA (idx 0), w_a (idx 1)
            "u",
        );
        let world = &worlds[0];
        let o = obj(world, "C");
        let probes = vec![
            Probe {
                outer: 1,
                args: vec![o.clone(), Value::Int(3)],
            },
            Probe {
                outer: 0,
                args: vec![o.clone()],
            },
        ];
        let d = infer(&prog, &probes, world, &worlds);
        // getA's read node is the root of outer 0.
        let read_site = (1usize, prog.outers[0].root);
        assert!(d.is_total(read_site));
        assert_eq!(d.value(read_site), Some(&Value::Int(3)));
    }

    #[test]
    fn comparison_with_known_threshold_halves_the_secret() {
        // atLeastTwo(c) = r_a(c) >= 2: one observation gives pi, not ti.
        let (_s, prog, worlds) = setup(
            r#"
            class C { a: int }
            fn atLeastTwo(c: C): bool { r_a(c) >= 2 }
            user u { atLeastTwo }
            "#,
            "u",
        );
        // Pick a world where a = 3 (observation true).
        let world = worlds
            .iter()
            .find(|w| {
                let o = obj(w, "C");
                w.read_attr(&o, &"a".into()).unwrap() == Value::Int(3)
            })
            .unwrap();
        let o = obj(world, "C");
        let probes = vec![Probe {
            outer: 0,
            args: vec![o],
        }];
        let d = infer(&prog, &probes, world, &worlds);
        // The read node: find it.
        let read = prog
            .iter()
            .find(|e| matches!(e.kind, NKind::Read(..)))
            .unwrap()
            .id;
        assert!(
            d.is_partial((0, read)),
            "candidates {:?}",
            d.candidates((0, read))
        );
        assert!(!d.is_total((0, read)));
        assert_eq!(
            d.candidates((0, read)).unwrap(),
            &[Value::Int(2), Value::Int(3)].into_iter().collect()
        );
    }

    #[test]
    fn diagonal_sum_is_inverted() {
        // leak(c) = r_a(c) + r_a(c): the two reads are equal (same cell, no
        // intervening write), so the observed sum pins the secret — the
        // I(E) join the static diagonal rule mirrors.
        let (_s, prog, worlds) = setup(
            r#"
            class C { a: int }
            fn leak(c: C): int { r_a(c) + r_a(c) }
            user u { leak }
            "#,
            "u",
        );
        let world = worlds
            .iter()
            .find(|w| {
                let o = obj(w, "C");
                w.read_attr(&o, &"a".into()).unwrap() == Value::Int(2)
            })
            .unwrap();
        let o = obj(world, "C");
        let d = infer(
            &prog,
            &[Probe {
                outer: 0,
                args: vec![o],
            }],
            world,
            &worlds,
        );
        let reads: Vec<ExprId> = prog
            .iter()
            .filter(|e| matches!(e.kind, NKind::Read(..)))
            .map(|e| e.id)
            .collect();
        assert_eq!(reads.len(), 2);
        for r in reads {
            assert!(d.is_total((0, r)));
            assert_eq!(d.value((0, r)), Some(&Value::Int(2)));
        }
    }

    #[test]
    fn stockbroker_probe_sequence_narrows_salary() {
        // The §3.1 attack in I(E) terms: set the budget, observe the
        // comparison — the salary read's candidates shrink.
        let (_s, prog, worlds) = setup(
            r#"
            class Broker { salary: int, budget: int }
            fn checkBudget(broker: Broker): bool {
              r_budget(broker) >= r_salary(broker)
            }
            user clerk { checkBudget, w_budget }
            "#,
            "clerk",
        );
        let world = worlds
            .iter()
            .find(|w| {
                let o = obj(w, "Broker");
                w.read_attr(&o, &"salary".into()).unwrap() == Value::Int(2)
            })
            .unwrap();
        let o = obj(world, "Broker");
        // Probe: budget := 1, checkBudget → false (1 >= 2 is false).
        let probes = vec![
            Probe {
                outer: 1,
                args: vec![o.clone(), Value::Int(1)],
            },
            Probe {
                outer: 0,
                args: vec![o.clone()],
            },
        ];
        let d = infer(&prog, &probes, world, &worlds);
        let salary_read = prog
            .iter()
            .find(|e| matches!(&e.kind, NKind::Read(a, _) if a.as_str() == "salary"))
            .unwrap()
            .id;
        let c = d.candidates((1, salary_read)).unwrap();
        // 1 >= salary false ⇒ salary > 1 ⇒ {2, 3}.
        assert_eq!(c, &[Value::Int(2), Value::Int(3)].into_iter().collect());
        assert!(d.is_partial((1, salary_read)));

        // A second, pinning probe: budget := 2, checkBudget → true.
        let probes = vec![
            Probe {
                outer: 1,
                args: vec![o.clone(), Value::Int(1)],
            },
            Probe {
                outer: 0,
                args: vec![o.clone()],
            },
            Probe {
                outer: 1,
                args: vec![o.clone(), Value::Int(2)],
            },
            Probe {
                outer: 0,
                args: vec![o],
            },
        ];
        let d = infer(&prog, &probes, world, &worlds);
        assert!(
            d.is_total((3, salary_read)),
            "{:?}",
            d.candidates((3, salary_read))
        );
        assert_eq!(d.value((3, salary_read)), Some(&Value::Int(2)));
    }

    #[test]
    fn no_capability_no_knowledge() {
        // Observing nothing relevant leaves the secret at its prior.
        let (_s, prog, worlds) = setup(
            r#"
            class C { a: int, b: int }
            fn getB(c: C): int { r_b(c) }
            user u { getB }
            "#,
            "u",
        );
        let world = &worlds[0];
        let o = obj(world, "C");
        let d = infer(
            &prog,
            &[Probe {
                outer: 0,
                args: vec![o],
            }],
            world,
            &worlds,
        );
        // b is pinned (observed), a is untouched — and indeed a never even
        // appears as a site. The b read must be total.
        let b_read = prog
            .iter()
            .find(|e| matches!(&e.kind, NKind::Read(attr, _) if attr.as_str() == "b"))
            .unwrap()
            .id;
        assert!(d.is_total((0, b_read)));
    }

    #[test]
    fn rounds_terminate() {
        let (_s, prog, worlds) = setup(
            r#"
            class C { a: int }
            fn f(c: C, x: int): int { (r_a(c) + x) * 2 }
            user u { f }
            "#,
            "u",
        );
        let world = &worlds[0];
        let o = obj(world, "C");
        let d = infer(
            &prog,
            &[Probe {
                outer: 0,
                args: vec![o, Value::Int(1)],
            }],
            world,
            &worlds,
        );
        assert!(d.rounds() < 10, "propagation should converge quickly");
        // f is fully observed and x known: the secret is recoverable.
        let read = prog
            .iter()
            .find(|e| matches!(e.kind, NKind::Read(..)))
            .unwrap()
            .id;
        assert!(d.is_total((0, read)));
    }
}
