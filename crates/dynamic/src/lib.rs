//! # secflow-dynamic
//!
//! The dynamic counterpart of the static analysis: concrete *execution
//! instances* (§3.3) and a bounded attacker that decides the capability
//! predicates `Can(D, L, cap, ᵏe)` (Definitions 2–5) by brute force over
//! small value domains.
//!
//! The paper defines user knowledge through the inference system `I(E)`
//! (Table 1) over observed executions. This crate implements the
//! *semantic* counterpart `I(E)` is an approximation of —
//! **indistinguishability over possible worlds**:
//!
//! * the attacker knows the program code, the arguments it supplied, and
//!   every (basic-typed) value a query returned;
//! * a *world* is a candidate initial database state; the attacker's
//!   knowledge after a probe sequence is the set of worlds producing the
//!   same observations;
//! * **total inferability** of an occurrence = its value is identical in
//!   every consistent world (Definition 4's `[ᵏe ∈ {v}]`);
//! * **partial inferability** = the set of possible values is a proper
//!   subset of the occurrence's value universe (Definition 5);
//! * **total/partial alterability** = varying the supplied arguments drives
//!   the occurrence's value over its whole universe / over ≥ 2 values
//!   (Definitions 2–3).
//!
//! Because the possible-worlds attacker is information-theoretically
//! optimal (for its bounded probe budget), every capability it realises is
//! realisable, so the differential experiment E3 checks the paper's
//! Theorem 1 in its strongest form: *whenever the concrete attacker
//! succeeds, `A(R)` must have reported the flaw*. E4 measures the converse
//! gap — the analysis' deliberate pessimism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod differential;
pub mod eval;
pub mod idealized;
pub mod infer;
pub mod strategy;
pub mod worlds;

pub use attack::{attack_requirement, AttackOutcome, AttackerConfig};
pub use differential::{classify, DiffCase, DiffOutcome, DiffReport};
pub use infer::{Deductions, Probe};
