//! Evaluator for unfolded, numbered programs with per-occurrence value
//! recording — producing the paper's *execution instances* (§3.3).
//!
//! Running an outer-most function of an [`NProgram`] against a database
//! yields not just the result but the value of **every numbered
//! subexpression** `[ᵏe]_E`, which is exactly what the capability
//! definitions quantify over. Unfolding preserves evaluation order, so the
//! recorded values agree with what `oodb-engine` computes for the original
//! nested calls (property P1, tested below).

use oodb_engine::{Database, RuntimeError};
use oodb_model::Value;
use secflow::unfold::{ExprId, NKind, NProgram};
use std::collections::HashMap;

/// The values every numbered occurrence took during one invocation of one
/// outer-most function.
pub type SiteValues = HashMap<ExprId, Value>;

/// Evaluate outer function `outer_idx` of `prog` with the given argument
/// values, mutating `db`, and recording each numbered occurrence's value.
pub fn eval_outer(
    db: &mut Database,
    prog: &NProgram,
    outer_idx: usize,
    args: &[Value],
) -> Result<(Value, SiteValues), RuntimeError> {
    let outer = &prog.outers[outer_idx];
    if args.len() != outer.params.len() {
        return Err(RuntimeError::ArityMismatch {
            target: outer.fn_ref.to_string(),
            expected: outer.params.len(),
            actual: args.len(),
        });
    }
    let mut sites = SiteValues::new();
    let v = eval(db, prog, outer.root, outer_idx, args, &mut sites)?;
    Ok((v, sites))
}

fn eval(
    db: &mut Database,
    prog: &NProgram,
    id: ExprId,
    outer_idx: usize,
    args: &[Value],
    sites: &mut SiteValues,
) -> Result<Value, RuntimeError> {
    let node = prog.get(id);
    let value = match &node.kind {
        NKind::Const(l) => l.to_value(),
        NKind::ArgVar { outer, param, .. } => {
            debug_assert_eq!(*outer, outer_idx, "ArgVar belongs to another outer");
            args.get(*param)
                .cloned()
                .ok_or_else(|| RuntimeError::UnboundVariable {
                    var: format!("argument #{param}"),
                })?
        }
        NKind::LetVar { binding, .. } => {
            sites
                .get(binding)
                .cloned()
                .ok_or_else(|| RuntimeError::UnboundVariable {
                    var: format!("binding {binding}"),
                })?
        }
        NKind::Basic(op, children) => {
            let mut vals = Vec::with_capacity(children.len());
            for c in children {
                vals.push(eval(db, prog, *c, outer_idx, args, sites)?);
            }
            oodb_engine::ops::eval_basic(*op, &vals)?
        }
        NKind::Read(attr, recv) => {
            let r = eval(db, prog, *recv, outer_idx, args, sites)?;
            db.read_attr(&r, attr)?
        }
        NKind::Write(attr, recv, val) => {
            let r = eval(db, prog, *recv, outer_idx, args, sites)?;
            let v = eval(db, prog, *val, outer_idx, args, sites)?;
            db.write_attr(&r, attr, v)?
        }
        NKind::New(class, ctor_args) => {
            let mut vals = Vec::with_capacity(ctor_args.len());
            for (_, c) in ctor_args {
                vals.push(eval(db, prog, *c, outer_idx, args, sites)?);
            }
            Value::Obj(db.create(class.clone(), vals)?)
        }
        NKind::Let { bindings, body, .. } => {
            for (_, rhs) in bindings {
                eval(db, prog, *rhs, outer_idx, args, sites)?;
            }
            eval(db, prog, *body, outer_idx, args, sites)?
        }
    };
    sites.insert(id, value.clone());
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_lang::parse_schema;
    use oodb_model::FnRef;
    use secflow::unfold::NProgram;

    fn setup() -> (Database, NProgram) {
        let schema = parse_schema(
            r#"
            class Broker { name: string, salary: int, budget: int, profit: int }
            fn checkBudget(broker: Broker): bool {
              r_budget(broker) >= 10 * r_salary(broker)
            }
            user clerk { checkBudget, w_budget }
            "#,
        )
        .unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str("clerk").unwrap()).unwrap();
        let mut db = Database::new(schema).unwrap();
        db.create(
            "Broker",
            vec![
                Value::str("John"),
                Value::Int(150),
                Value::Int(1000),
                Value::Int(0),
            ],
        )
        .unwrap();
        (db, prog)
    }

    #[test]
    fn records_every_site() {
        let (mut db, prog) = setup();
        let john = Value::Obj(db.extent(&"Broker".into())[0]);
        let (v, sites) = eval_outer(&mut db, &prog, 0, std::slice::from_ref(&john)).unwrap();
        // budget 1000 < 10*150 = 1500.
        assert_eq!(v, Value::Bool(false));
        // The Figure-1 numbering: 1broker…7>=.
        assert_eq!(sites[&1], john);
        assert_eq!(sites[&2], Value::Int(1000)); // r_budget
        assert_eq!(sites[&3], Value::Int(10));
        assert_eq!(sites[&5], Value::Int(150)); // r_salary
        assert_eq!(sites[&6], Value::Int(1500));
        assert_eq!(sites[&7], Value::Bool(false));
        assert_eq!(sites.len(), 7);
    }

    #[test]
    fn write_outer_mutates_database() {
        let (mut db, prog) = setup();
        let john = Value::Obj(db.extent(&"Broker".into())[0]);
        // outer 1 = w_budget(a1, a2).
        let (v, sites) = eval_outer(&mut db, &prog, 1, &[john.clone(), Value::Int(7)]).unwrap();
        assert_eq!(v, Value::Null);
        assert_eq!(sites[&9], Value::Int(7));
        assert_eq!(
            db.read_attr(&john, &"budget".into()).unwrap(),
            Value::Int(7)
        );
    }

    #[test]
    fn unfolding_preserves_engine_semantics() {
        // P1: evaluating the unfolded checkBudget equals invoking it
        // through the engine.
        let (mut db, prog) = setup();
        let john = Value::Obj(db.extent(&"Broker".into())[0]);
        let mut db2 = db.clone();
        let (via_prog, _) = eval_outer(&mut db, &prog, 0, std::slice::from_ref(&john)).unwrap();
        let via_engine = db2
            .invoke(&FnRef::access("checkBudget"), vec![john])
            .unwrap();
        assert_eq!(via_prog, via_engine);
    }

    #[test]
    fn arity_checked() {
        let (mut db, prog) = setup();
        assert!(matches!(
            eval_outer(&mut db, &prog, 0, &[]),
            Err(RuntimeError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn let_bindings_recorded_for_inner_calls() {
        let schema = parse_schema(
            r#"
            fn g(y: int): int { y * 2 }
            fn f(x: int): int { g(x) + 1 }
            user u { f }
            "#,
        )
        .unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str("u").unwrap()).unwrap();
        let mut db = Database::new(schema).unwrap();
        let (v, sites) = eval_outer(&mut db, &prog, 0, &[Value::Int(5)]).unwrap();
        assert_eq!(v, Value::Int(11));
        // 6+(4let(g) y=1x in 3*(2y, …) end, 5:1) — the let node carries the
        // body's value.
        assert_eq!(sites[&1], Value::Int(5));
        assert_eq!(sites[&4], Value::Int(10));
    }
}
