//! Differential validation: static `A(R)` vs. the bounded concrete
//! attacker.
//!
//! For every (schema, requirement) case we obtain two verdicts and
//! classify:
//!
//! | static | dynamic | meaning |
//! |--------|---------|---------|
//! | flaw   | attack  | **BothFlag** — true positive |
//! | flaw   | no      | **StaticOnly** — pessimism (or attacker bounds) |
//! | no     | attack  | **DynamicOnly** — *soundness violation*: must be 0 (Theorem 1, experiment E3) |
//! | no     | no      | **Neither** — true negative |

use crate::attack::{attack_requirement, AttackError, AttackerConfig};
use oodb_lang::requirement::Requirement;
use oodb_lang::Schema;
use secflow::algorithm::{analyze, AnalysisError};
use std::fmt;

/// Classification of one differential case.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiffOutcome {
    /// Static flags, attacker realises.
    BothFlag,
    /// Static flags, bounded attacker does not realise.
    StaticOnly,
    /// Attacker realises, static missed — a soundness violation.
    DynamicOnly,
    /// Neither flags.
    Neither,
}

impl fmt::Display for DiffOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DiffOutcome::BothFlag => "both-flag",
            DiffOutcome::StaticOnly => "static-only",
            DiffOutcome::DynamicOnly => "DYNAMIC-ONLY (unsound!)",
            DiffOutcome::Neither => "neither",
        })
    }
}

/// One case's result.
#[derive(Clone, Debug)]
pub struct DiffCase {
    /// The requirement checked.
    pub requirement: String,
    /// Classification.
    pub outcome: DiffOutcome,
    /// Attack witness summary, when the attacker succeeded.
    pub witness: Option<String>,
}

/// Errors from either side.
#[derive(Clone, Debug)]
pub enum DiffError {
    /// Static analysis failed.
    Static(AnalysisError),
    /// Attack failed.
    Dynamic(AttackError),
}

impl fmt::Display for DiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffError::Static(e) => write!(f, "static: {e}"),
            DiffError::Dynamic(e) => write!(f, "dynamic: {e}"),
        }
    }
}

impl std::error::Error for DiffError {}

/// Classify one (schema, requirement) case.
pub fn classify(
    schema: &Schema,
    req: &Requirement,
    cfg: &AttackerConfig,
) -> Result<DiffCase, DiffError> {
    let static_verdict = analyze(schema, req).map_err(DiffError::Static)?;
    let dynamic = attack_requirement(schema, req, cfg).map_err(DiffError::Dynamic)?;
    let outcome = match (static_verdict.is_violated(), dynamic.achieved) {
        (true, true) => DiffOutcome::BothFlag,
        (true, false) => DiffOutcome::StaticOnly,
        (false, true) => DiffOutcome::DynamicOnly,
        (false, false) => DiffOutcome::Neither,
    };
    Ok(DiffCase {
        requirement: req.to_string(),
        outcome,
        witness: dynamic.witness.map(|w| w.summary),
    })
}

/// Aggregate over a corpus.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// True positives.
    pub both: usize,
    /// Pessimistic alarms.
    pub static_only: usize,
    /// Soundness violations (must be 0).
    pub dynamic_only: usize,
    /// True negatives.
    pub neither: usize,
    /// Cases that errored out (bounds) — excluded from the rates.
    pub errors: usize,
    /// The dynamic-only witnesses, for debugging.
    pub violations: Vec<DiffCase>,
}

impl DiffReport {
    /// Record one case.
    pub fn record(&mut self, case: Result<DiffCase, DiffError>) {
        match case {
            Ok(c) => match c.outcome {
                DiffOutcome::BothFlag => self.both += 1,
                DiffOutcome::StaticOnly => self.static_only += 1,
                DiffOutcome::DynamicOnly => {
                    self.dynamic_only += 1;
                    self.violations.push(c);
                }
                DiffOutcome::Neither => self.neither += 1,
            },
            Err(_) => self.errors += 1,
        }
    }

    /// Total classified cases.
    pub fn total(&self) -> usize {
        self.both + self.static_only + self.dynamic_only + self.neither
    }

    /// Fraction of static alarms the bounded attacker realises
    /// (experiment E4's precision measure).
    pub fn realised_alarm_rate(&self) -> f64 {
        let alarms = self.both + self.static_only;
        if alarms == 0 {
            0.0
        } else {
            self.both as f64 / alarms as f64
        }
    }

    /// Is the soundness invariant intact?
    pub fn is_sound(&self) -> bool {
        self.dynamic_only == 0
    }
}

impl fmt::Display for DiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "differential: {} cases ({} errors excluded)",
            self.total(),
            self.errors
        )?;
        writeln!(f, "  both-flag    : {}", self.both)?;
        writeln!(f, "  static-only  : {}", self.static_only)?;
        writeln!(
            f,
            "  dynamic-only : {}  (soundness violations)",
            self.dynamic_only
        )?;
        writeln!(f, "  neither      : {}", self.neither)?;
        writeln!(
            f,
            "  realised-alarm rate: {:.1}%",
            100.0 * self.realised_alarm_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_lang::{parse_requirement, parse_schema};

    #[test]
    fn paper_example_is_both_flag() {
        let s = parse_schema(
            r#"
            class Broker { salary: int, budget: int }
            fn checkBudget(broker: Broker): bool {
              r_budget(broker) >= r_salary(broker)
            }
            user clerk { checkBudget, w_budget }
            "#,
        )
        .unwrap();
        oodb_lang::check_schema(&s).unwrap();
        let req = parse_requirement("(clerk, r_salary(x) : ti)").unwrap();
        let cfg = AttackerConfig {
            strategies: crate::strategy::StrategySpec {
                max_steps: 4,
                max_shapes: 64,
                ..Default::default()
            },
            ..Default::default()
        };
        let case = classify(&s, &req, &cfg).unwrap();
        assert_eq!(case.outcome, DiffOutcome::BothFlag);
    }

    #[test]
    fn true_negative_is_neither() {
        let s = parse_schema(
            r#"
            class C { a: int, b: int }
            fn getA(c: C): int { r_a(c) }
            user u { getA }
            "#,
        )
        .unwrap();
        oodb_lang::check_schema(&s).unwrap();
        let req = parse_requirement("(u, r_b(x) : pi)").unwrap();
        let case = classify(&s, &req, &AttackerConfig::small()).unwrap();
        assert_eq!(case.outcome, DiffOutcome::Neither);
    }

    #[test]
    fn report_aggregation() {
        let mut r = DiffReport::default();
        r.record(Ok(DiffCase {
            requirement: "x".into(),
            outcome: DiffOutcome::BothFlag,
            witness: None,
        }));
        r.record(Ok(DiffCase {
            requirement: "y".into(),
            outcome: DiffOutcome::StaticOnly,
            witness: None,
        }));
        assert_eq!(r.total(), 2);
        assert!(r.is_sound());
        assert!((r.realised_alarm_rate() - 0.5).abs() < 1e-9);
        let text = r.to_string();
        assert!(text.contains("both-flag    : 1"));
    }
}
