//! Possible-world enumeration.
//!
//! A *world* is a candidate initial database state. The attacker knows the
//! schema and the database's shape (how many objects exist) but not the
//! secret attribute values; Definitions 1–5 existentially quantify over the
//! initial state `D`, so the experiments range over every world.
//!
//! Bounded construction: every class gets a fixed number of objects;
//! integer attributes range over a small domain, booleans over both values,
//! strings are fixed (`"s"`), object references are `null` and sets empty.
//! The bounds are deliberate: the differential experiments need exhaustive
//! enumeration, and the workload generator keeps schemas inside them.

use oodb_engine::Database;
use oodb_lang::Schema;
use oodb_model::{Type, Value};
use std::fmt;

/// Bounds for world enumeration.
#[derive(Clone, Debug)]
pub struct WorldSpec {
    /// Instances created per class.
    pub objects_per_class: usize,
    /// Values integer attributes (and integer arguments) range over.
    pub int_domain: Vec<i64>,
    /// Hard cap on the number of worlds.
    pub max_worlds: usize,
}

impl Default for WorldSpec {
    fn default() -> WorldSpec {
        WorldSpec {
            objects_per_class: 1,
            int_domain: vec![0, 1, 2],
            max_worlds: 4096,
        }
    }
}

/// World enumeration failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorldError {
    /// The secret space exceeds the cap — shrink the schema or the domain.
    TooManyWorlds {
        /// Worlds that would be required.
        required: usize,
        /// The configured cap.
        cap: usize,
    },
    /// Database construction failed (schema not checked).
    Build(String),
}

impl fmt::Display for WorldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorldError::TooManyWorlds { required, cap } => {
                write!(f, "{required} worlds required, cap is {cap}")
            }
            WorldError::Build(m) => write!(f, "world construction failed: {m}"),
        }
    }
}

impl std::error::Error for WorldError {}

/// One secret slot: (class index in name order, object index, attr index).
#[derive(Clone, Debug)]
struct Secret {
    class: oodb_model::ClassName,
    object: usize,
    attr: usize,
    choices: Vec<Value>,
}

/// Enumerate every world for the schema under the spec. All worlds share
/// the same object layout (classes in name order, objects in creation
/// order) so OIDs align across worlds.
pub fn enumerate_worlds(schema: &Schema, spec: &WorldSpec) -> Result<Vec<Database>, WorldError> {
    let mut secrets: Vec<Secret> = Vec::new();
    for class in schema.classes.iter() {
        for object in 0..spec.objects_per_class {
            for (ai, attr) in class.attrs.iter().enumerate() {
                let choices = match &attr.ty {
                    Type::Basic(oodb_model::BasicType::Int) => {
                        spec.int_domain.iter().map(|i| Value::Int(*i)).collect()
                    }
                    Type::Basic(oodb_model::BasicType::Bool) => {
                        vec![Value::Bool(false), Value::Bool(true)]
                    }
                    // Strings, object references and sets are fixed — see
                    // the module docs.
                    Type::Basic(oodb_model::BasicType::Str) => vec![Value::str("s")],
                    Type::Class(_) | Type::Null => vec![Value::Null],
                    Type::Set(_) => vec![Value::set(vec![])],
                };
                secrets.push(Secret {
                    class: class.name.clone(),
                    object,
                    attr: ai,
                    choices,
                });
            }
        }
    }

    let required: usize = secrets
        .iter()
        .map(|s| s.choices.len())
        .try_fold(1usize, |acc, n| acc.checked_mul(n))
        .unwrap_or(usize::MAX);
    if required > spec.max_worlds {
        return Err(WorldError::TooManyWorlds {
            required,
            cap: spec.max_worlds,
        });
    }

    let mut worlds = Vec::with_capacity(required);
    let mut indices = vec![0usize; secrets.len()];
    loop {
        worlds.push(build_world(schema, spec, &secrets, &indices)?);
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == indices.len() {
                return Ok(worlds);
            }
            indices[i] += 1;
            if indices[i] < secrets[i].choices.len() {
                break;
            }
            indices[i] = 0;
            i += 1;
        }
        if indices.iter().all(|&x| x == 0) {
            return Ok(worlds);
        }
    }
}

fn build_world(
    schema: &Schema,
    spec: &WorldSpec,
    secrets: &[Secret],
    indices: &[usize],
) -> Result<Database, WorldError> {
    let mut db = Database::new_unchecked(schema.clone());
    for class in schema.classes.iter() {
        for object in 0..spec.objects_per_class {
            let attrs: Vec<Value> = class
                .attrs
                .iter()
                .enumerate()
                .map(|(ai, _)| {
                    let pos = secrets
                        .iter()
                        .position(|s| s.class == class.name && s.object == object && s.attr == ai)
                        .expect("every attribute slot is a secret");
                    secrets[pos].choices[indices[pos]].clone()
                })
                .collect();
            db.create(class.name.clone(), attrs)
                .map_err(|e| WorldError::Build(e.to_string()))?;
        }
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_lang::parse_schema;
    use oodb_model::Value;

    #[test]
    fn world_count_is_product_of_choices() {
        let schema = parse_schema("class C { a: int, b: bool, n: string }").unwrap();
        let spec = WorldSpec {
            objects_per_class: 1,
            int_domain: vec![0, 1, 2],
            max_worlds: 100,
        };
        let worlds = enumerate_worlds(&schema, &spec).unwrap();
        // 3 (int) × 2 (bool) × 1 (string).
        assert_eq!(worlds.len(), 6);
        // All worlds share the object layout.
        for w in &worlds {
            assert_eq!(w.object_count(), 1);
        }
    }

    #[test]
    fn each_combination_appears_once() {
        let schema = parse_schema("class C { a: int, b: int }").unwrap();
        let spec = WorldSpec {
            objects_per_class: 1,
            int_domain: vec![0, 1],
            max_worlds: 100,
        };
        let worlds = enumerate_worlds(&schema, &spec).unwrap();
        assert_eq!(worlds.len(), 4);
        let mut seen = std::collections::BTreeSet::new();
        for w in &worlds {
            let o = Value::Obj(w.extent(&"C".into())[0]);
            let a = w.read_attr(&o, &"a".into()).unwrap();
            let b = w.read_attr(&o, &"b".into()).unwrap();
            assert!(seen.insert((a.as_int().unwrap(), b.as_int().unwrap())));
        }
    }

    #[test]
    fn cap_enforced() {
        let schema = parse_schema("class C { a: int, b: int, c: int }").unwrap();
        let spec = WorldSpec {
            objects_per_class: 2,
            int_domain: vec![0, 1, 2, 3],
            max_worlds: 100,
        };
        assert!(matches!(
            enumerate_worlds(&schema, &spec),
            Err(WorldError::TooManyWorlds { .. })
        ));
    }

    #[test]
    fn multiple_objects_and_classes() {
        let schema = parse_schema("class A { x: int } class B { y: bool }").unwrap();
        let spec = WorldSpec {
            objects_per_class: 2,
            int_domain: vec![0, 1],
            max_worlds: 1000,
        };
        let worlds = enumerate_worlds(&schema, &spec).unwrap();
        // (2 ints)^2 objects × (2 bools)^2 objects = 16.
        assert_eq!(worlds.len(), 16);
        assert_eq!(worlds[0].extent(&"A".into()).len(), 2);
        assert_eq!(worlds[0].extent(&"B".into()).len(), 2);
    }
}
