//! The bounded concrete attacker: decides, by exhaustive search over
//! worlds, probe shapes and argument assignments, whether a user can
//! actually realise all capabilities a requirement forbids.
//!
//! Capability semantics (bounded versions of Definitions 2–5; see the
//! crate docs for the possible-worlds reading):
//!
//! * `ta` on a site: varying the supplied arguments (initial state fixed)
//!   drives the site over the whole *type domain* — the configured integer
//!   domain for `int` sites, `{false,true}` for `bool`. Sites whose image
//!   misses a domain value are not totally alterable, mirroring the paper's
//!   `∀v ∈ Dom(ᵏe)`;
//! * `pa`: over at least two values;
//! * `ti`: for some argument assignment, every world consistent with the
//!   observations gives the site the same value;
//! * `pi`: the observations *strictly shrink* the site's possible-value set
//!   (posterior ⊊ prior, the prior being the site's values across all
//!   worlds for the same probes). This "knowledge gain" reading replaces
//!   the paper's literal `S ⊊ Dom`, which is trivially true for derived
//!   expressions (the user can read the program code, so `x + x` is known
//!   even before any query); strict gain is the operationally meaningful
//!   notion and is what `A(R)`'s pi terms over-approximate.
//!
//! Capabilities are combined the way `A(R)` combines them (and the way the
//! paper's Definition 1 effectively does after its §4.1 pessimistic
//! assumption): each capability may be realised by its own argument
//! assignment, but all against the same initial world, probe shape, and
//! occurrence instance.

use crate::eval::eval_outer;
use crate::idealized::infer_idealized;
use crate::infer::Probe;
use crate::strategy::{assignments, shapes, ArgChoice, Shape, StrategySpec};
use crate::worlds::{enumerate_worlds, WorldError, WorldSpec};
use oodb_engine::Database;
use oodb_lang::requirement::{Cap, Requirement};
use oodb_lang::Schema;
use oodb_model::Value;
use secflow::algorithm::occurrences;
use secflow::report::OccurrenceKind;
use secflow::unfold::{ExprId, NProgram, UnfoldError};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Attacker bounds.
#[derive(Clone, Debug)]
pub struct AttackerConfig {
    /// World enumeration bounds (`int_domain` inside is overridden by
    /// `domains` below).
    pub worlds: WorldSpec,
    /// Strategy enumeration bounds (`int_domain` likewise overridden).
    pub strategies: StrategySpec,
    /// The integer domains the attack must succeed under — **all** of them.
    ///
    /// The paper's `Dom(int)` is unbounded; a single small non-negative
    /// domain lets one boolean observation pin a secret purely because so
    /// few worlds exist (e.g. `-2a0² >= a1` forces `a1 = 0` when secrets
    /// are non-negative, but over ℤ constrains nothing). Requiring the
    /// capability to be realised under two structurally different domains
    /// (one containing negatives, non-contiguous) filters those artefacts
    /// while keeping every genuine attack (probing, write-read, algebraic
    /// inversion), which succeeds regardless of the domain.
    pub domains: Vec<Vec<i64>>,
}

impl Default for AttackerConfig {
    fn default() -> AttackerConfig {
        AttackerConfig {
            worlds: WorldSpec::default(),
            strategies: StrategySpec::default(),
            domains: vec![vec![0, 1, 2], vec![-1, 0, 1, 3]],
        }
    }
}

impl AttackerConfig {
    /// A configuration suitable for the differential experiments: 1 object
    /// per class, 2 probes, domains `{0,1,2}` and `{-1,0,1,3}`.
    pub fn small() -> AttackerConfig {
        AttackerConfig::default()
    }
}

/// Attack failure (bounds exceeded or schema problems).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttackError {
    /// Unknown user in the requirement.
    UnknownUser(String),
    /// Unfolding failed.
    Unfold(UnfoldError),
    /// World enumeration failed.
    Worlds(WorldError),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::UnknownUser(u) => write!(f, "unknown user `{u}`"),
            AttackError::Unfold(e) => write!(f, "{e}"),
            AttackError::Worlds(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AttackError {}

impl From<UnfoldError> for AttackError {
    fn from(e: UnfoldError) -> Self {
        AttackError::Unfold(e)
    }
}

impl From<WorldError> for AttackError {
    fn from(e: WorldError) -> Self {
        AttackError::Worlds(e)
    }
}

/// A successful attack's description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttackWitness {
    /// The probe shape (outer function names per step).
    pub shape: Vec<String>,
    /// Index of the initial world.
    pub world: usize,
    /// Which occurrence instance (step index within the shape).
    pub step: usize,
    /// Human-readable summary.
    pub summary: String,
}

/// Outcome of an attack attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttackOutcome {
    /// Did the attacker realise every forbidden capability?
    pub achieved: bool,
    /// Witness, when achieved.
    pub witness: Option<AttackWitness>,
    /// Shapes skipped because their assignment space exceeded the cap.
    pub skipped_shapes: usize,
}

/// One step's outcome in one run: the rendered observation and the values
/// of the sites of interest.
struct StepRun {
    obs: String,
    sites: HashMap<ExprId, Value>,
}

/// Try to realise all capabilities of `req` with the bounded attacker.
///
/// Alterability capabilities are decided constructively by the
/// possible-worlds machinery (and must hold under every configured integer
/// domain — see [`AttackerConfig::domains`]). Inferability capabilities are
/// decided by the **idealized** engine ([`crate::idealized`]), whose
/// deductions are valid over unbounded integers, so finite-domain
/// truncation can never masquerade as inference. Capabilities combine the
/// way `A(R)` combines them: each may use its own probes.
pub fn attack_requirement(
    schema: &Schema,
    req: &Requirement,
    cfg: &AttackerConfig,
) -> Result<AttackOutcome, AttackError> {
    let (alter_req, infer_req) = split_requirement(req);

    let mut witness: Option<AttackWitness> = None;
    let mut skipped_total = 0usize;
    if let Some(ir) = &infer_req {
        let (out, skipped) = idealized_achieves(schema, ir, cfg)?;
        skipped_total = skipped_total.max(skipped);
        match out {
            Some(w) => witness = Some(w),
            None => {
                return Ok(AttackOutcome {
                    achieved: false,
                    witness: None,
                    skipped_shapes: skipped_total,
                })
            }
        }
    }
    let Some(ar) = alter_req else {
        return Ok(AttackOutcome {
            achieved: infer_req.is_some(),
            witness,
            skipped_shapes: skipped_total,
        });
    };
    let out = attack_alterability(schema, &ar, cfg)?;
    Ok(AttackOutcome {
        achieved: out.achieved && (infer_req.is_none() || witness.is_some()),
        witness: out.witness.or(witness),
        skipped_shapes: skipped_total.max(out.skipped_shapes),
    })
}

/// Split a requirement into its alterability-only and inferability-only
/// parts (either may be absent).
fn split_requirement(req: &Requirement) -> (Option<Requirement>, Option<Requirement>) {
    let filter = |caps: &[Cap], want_infer: bool| -> Vec<Cap> {
        caps.iter()
            .copied()
            .filter(|c| c.is_inferability() == want_infer)
            .collect()
    };
    let build = |want_infer: bool| -> Option<Requirement> {
        let arg_caps: Vec<Vec<Cap>> = req
            .arg_caps
            .iter()
            .map(|caps| filter(caps, want_infer))
            .collect();
        let ret_caps = filter(&req.ret_caps, want_infer);
        if arg_caps.iter().all(Vec::is_empty) && ret_caps.is_empty() {
            None
        } else {
            Some(Requirement {
                user: req.user.clone(),
                target: req.target.clone(),
                arg_names: req.arg_names.clone(),
                arg_caps,
                ret_caps,
            })
        }
    };
    (build(false), build(true))
}

/// Decide the inferability part with the idealized (ℤ-valid) engine.
fn idealized_achieves(
    schema: &Schema,
    req: &Requirement,
    cfg: &AttackerConfig,
) -> Result<(Option<AttackWitness>, usize), AttackError> {
    let caps = schema
        .user(&req.user)
        .ok_or_else(|| AttackError::UnknownUser(req.user.to_string()))?;
    let prog = NProgram::unfold(schema, caps)?;
    let occs = occurrences(&prog, &req.target);
    if occs.is_empty() {
        return Ok((None, 0));
    }
    let core: Vec<i64> = cfg.domains.iter().skip(1).fold(
        cfg.domains.first().cloned().unwrap_or_default(),
        |acc, d| acc.into_iter().filter(|v| d.contains(v)).collect(),
    );
    let mut one = cfg.clone();
    if let Some(d) = cfg.domains.first() {
        one.worlds.int_domain = d.clone();
        one.strategies.int_domain = d.clone();
    }
    let worlds = enumerate_worlds(schema, &one.worlds)?;
    let mut skipped = 0usize;
    for shape in shapes(&prog, &one.strategies) {
        let Some(asgs) = assignments(&prog, &shape, &one.strategies) else {
            skipped += 1;
            continue;
        };
        for asg in &asgs {
            for (wi, world) in worlds.iter().enumerate() {
                let probes: Vec<Probe> = shape
                    .iter()
                    .zip(asg)
                    .map(|(&outer, choices)| Probe {
                        outer,
                        args: choices.iter().map(|c| resolve2(c, world)).collect(),
                    })
                    .collect();
                let d = infer_idealized(&prog, &probes, world);
                for occ in &occs {
                    let Some(outer_idx) = (match occ.kind {
                        OccurrenceKind::OuterAccess { outer } => Some(outer),
                        OccurrenceKind::Inner { node } => prog.outer_index_of(node),
                    }) else {
                        continue;
                    };
                    for (t, &o) in shape.iter().enumerate() {
                        if o != outer_idx {
                            continue;
                        }
                        if idealized_occ_ok(&prog, req, occ, &d, t, &core) {
                            let shape_names: Vec<String> = shape
                                .iter()
                                .map(|&o| prog.outers[o].fn_ref.to_string())
                                .collect();
                            return Ok((
                                Some(AttackWitness {
                                    summary: format!(
                                        "idealized deduction: shape [{}] from world {wi}                                          realises {req}",
                                        shape_names.join(", ")
                                    ),
                                    shape: shape_names,
                                    world: wi,
                                    step: t,
                                }),
                                skipped,
                            ));
                        }
                    }
                }
            }
        }
    }
    Ok((None, skipped))
}

fn resolve2(choice: &ArgChoice, db: &Database) -> Value {
    match choice {
        ArgChoice::Val(v) => v.clone(),
        ArgChoice::Object(class, idx) => db
            .extent(class)
            .get(*idx)
            .copied()
            .map(Value::Obj)
            .unwrap_or(Value::Null),
    }
}

fn idealized_occ_ok(
    prog: &NProgram,
    req: &Requirement,
    occ: &secflow::report::Occurrence,
    d: &crate::idealized::IdealDeductions,
    t: usize,
    core: &[i64],
) -> bool {
    let check = |cap: Cap, e: secflow::unfold::ExprId| -> bool {
        match cap {
            Cap::Ti => d.is_total((t, e)),
            Cap::Pi => d.is_partial((t, e), core) || d.is_total((t, e)),
            // Alterability never reaches this path.
            Cap::Ta | Cap::Pa => false,
        }
    };
    match occ.kind {
        OccurrenceKind::OuterAccess { outer } => {
            let out = &prog.outers[outer];
            for (i, caps) in req.arg_caps.iter().enumerate() {
                let basic = out
                    .params
                    .get(i)
                    .map(|(_, ty)| ty.is_basic())
                    .unwrap_or(false);
                for c in caps {
                    if !basic {
                        return false;
                    }
                    let _ = c;
                }
            }
            req.ret_caps.iter().all(|c| check(*c, occ.ret))
        }
        OccurrenceKind::Inner { .. } => {
            for (i, caps) in req.arg_caps.iter().enumerate() {
                let Some(&arg) = occ.args.get(i) else {
                    if caps.is_empty() {
                        continue;
                    }
                    return false;
                };
                for c in caps {
                    if !check(*c, arg) {
                        return false;
                    }
                }
            }
            req.ret_caps.iter().all(|c| check(*c, occ.ret))
        }
    }
}

/// The alterability part, by possible-worlds image search under every
/// configured domain.
fn attack_alterability(
    schema: &Schema,
    req: &Requirement,
    cfg: &AttackerConfig,
) -> Result<AttackOutcome, AttackError> {
    let mut first: Option<AttackOutcome> = None;
    let mut skipped = 0usize;
    // The common core of all configured domains: a partial-inferability
    // claim must exclude a value *in the core* — an exclusion that only
    // exists because a domain is truncated (the secret's co-domain cannot
    // represent a function value) is an artefact of bounded enumeration,
    // not an inference the paper's unbounded-integer semantics admits.
    let core: Vec<i64> = cfg.domains.iter().skip(1).fold(
        cfg.domains.first().cloned().unwrap_or_default(),
        |acc, d| acc.into_iter().filter(|v| d.contains(v)).collect(),
    );
    for domain in &cfg.domains {
        let mut one = cfg.clone();
        one.worlds.int_domain = domain.clone();
        one.strategies.int_domain = domain.clone();
        let out = attack_under(schema, req, &one, &core)?;
        skipped = skipped.max(out.skipped_shapes);
        if !out.achieved {
            return Ok(AttackOutcome {
                achieved: false,
                witness: None,
                skipped_shapes: skipped,
            });
        }
        if first.is_none() {
            first = Some(out);
        }
    }
    Ok(first.unwrap_or(AttackOutcome {
        achieved: false,
        witness: None,
        skipped_shapes: skipped,
    }))
}

/// One attack attempt under a single fixed integer domain.
fn attack_under(
    schema: &Schema,
    req: &Requirement,
    cfg: &AttackerConfig,
    core: &[i64],
) -> Result<AttackOutcome, AttackError> {
    let caps = schema
        .user(&req.user)
        .ok_or_else(|| AttackError::UnknownUser(req.user.to_string()))?;
    let prog = NProgram::unfold(schema, caps)?;
    let occs = occurrences(&prog, &req.target);
    if occs.is_empty() {
        return Ok(AttackOutcome {
            achieved: false,
            witness: None,
            skipped_shapes: 0,
        });
    }
    let worlds = enumerate_worlds(schema, &cfg.worlds)?;

    // Sites whose values we must record.
    let mut interest: BTreeSet<ExprId> = BTreeSet::new();
    for occ in &occs {
        interest.extend(occ.args.iter().copied());
        interest.insert(occ.ret);
    }

    let all_shapes = shapes(&prog, &cfg.strategies);
    let mut skipped = 0usize;

    for shape in &all_shapes {
        let Some(asgs) = assignments(&prog, shape, &cfg.strategies) else {
            skipped += 1;
            continue;
        };
        // runs[a][w] = per-step outcomes.
        let runs: Vec<Vec<Vec<StepRun>>> = asgs
            .iter()
            .map(|asg| {
                worlds
                    .iter()
                    .map(|w| run_probes(&prog, shape, asg, w, &interest))
                    .collect()
            })
            .collect();

        // Precompute observation strings once per (assignment, world).
        let obs: Vec<Vec<String>> = runs
            .iter()
            .map(|per_world| per_world.iter().map(|r| full_obs(r)).collect())
            .collect();
        if let Some(w) = check_shape(
            &prog,
            req,
            &occs,
            shape,
            &asgs.len(),
            &runs,
            &obs,
            worlds.len(),
            &cfg.worlds.int_domain,
            core,
        ) {
            let shape_names: Vec<String> = shape
                .iter()
                .map(|&o| prog.outers[o].fn_ref.to_string())
                .collect();
            return Ok(AttackOutcome {
                achieved: true,
                witness: Some(AttackWitness {
                    summary: format!(
                        "shape [{}] from world {} realises {}",
                        shape_names.join(", "),
                        w.0,
                        req
                    ),
                    shape: shape_names,
                    world: w.0,
                    step: w.1,
                }),
                skipped_shapes: skipped,
            });
        }
    }

    Ok(AttackOutcome {
        achieved: false,
        witness: None,
        skipped_shapes: skipped,
    })
}

/// Run one probe sequence on (a clone of) one world.
fn run_probes(
    prog: &NProgram,
    shape: &Shape,
    asg: &[Vec<ArgChoice>],
    world: &Database,
    interest: &BTreeSet<ExprId>,
) -> Vec<StepRun> {
    let mut db = world.clone();
    let mut out = Vec::with_capacity(shape.len());
    for (step, &outer) in shape.iter().enumerate() {
        let args: Vec<Value> = asg[step].iter().map(|c| resolve(c, &db)).collect();
        match eval_outer(&mut db, prog, outer, &args) {
            Ok((root, sites)) => {
                let kept: HashMap<ExprId, Value> = sites
                    .into_iter()
                    .filter(|(id, _)| interest.contains(id))
                    .collect();
                out.push(StepRun {
                    obs: observable(&root),
                    sites: kept,
                });
            }
            Err(e) => {
                // The user observes the failure; state changes up to the
                // error persist (the evaluator applied them in order).
                out.push(StepRun {
                    obs: format!("ERR:{e}"),
                    sites: HashMap::new(),
                });
            }
        }
    }
    out
}

fn resolve(choice: &ArgChoice, db: &Database) -> Value {
    match choice {
        ArgChoice::Val(v) => v.clone(),
        ArgChoice::Object(class, idx) => db
            .extent(class)
            .get(*idx)
            .copied()
            .map(Value::Obj)
            .unwrap_or(Value::Null),
    }
}

/// What the user sees of a value: OIDs are opaque (§3.2).
fn observable(v: &Value) -> String {
    match v {
        Value::Obj(_) => "(obj)".to_owned(),
        Value::Set(items) => {
            let mut parts: Vec<String> = items.iter().map(observable).collect();
            parts.sort();
            format!("{{{}}}", parts.join(","))
        }
        other => other.to_string(),
    }
}

/// ⊥ marker for "site not evaluated in this run".
const BOTTOM: &str = "\u{22a5}";

fn site_key(run: &[StepRun], step: usize, e: ExprId) -> String {
    run.get(step)
        .and_then(|s| s.sites.get(&e))
        .map(|v| format!("{v:?}"))
        .unwrap_or_else(|| BOTTOM.to_owned())
}

fn full_obs(run: &[StepRun]) -> String {
    run.iter()
        .map(|s| s.obs.as_str())
        .collect::<Vec<_>>()
        .join("|")
}

/// Check every occurrence instance against every initial world for this
/// shape; returns `(world, step)` of the first success.
#[allow(clippy::too_many_arguments)]
fn check_shape(
    prog: &NProgram,
    req: &Requirement,
    occs: &[secflow::report::Occurrence],
    shape: &Shape,
    n_asgs: &usize,
    runs: &[Vec<Vec<StepRun>>],
    obs: &[Vec<String>],
    n_worlds: usize,
    int_domain: &[i64],
    core: &[i64],
) -> Option<(usize, usize)> {
    for occ in occs {
        let outer_idx = match occ.kind {
            OccurrenceKind::OuterAccess { outer } => outer,
            OccurrenceKind::Inner { node } => prog.outer_index_of(node)?,
        };
        for (step, &o) in shape.iter().enumerate() {
            if o != outer_idx {
                continue;
            }
            // Collect the capability checks for this occurrence.
            let mut checks: Vec<(Cap, SiteRef)> = Vec::new();
            let mut direct_ok = true;
            match occ.kind {
                OccurrenceKind::OuterAccess { outer } => {
                    let out = &prog.outers[outer];
                    for (i, caps) in req.arg_caps.iter().enumerate() {
                        for c in caps {
                            let basic = out
                                .params
                                .get(i)
                                .map(|(_, t)| t.is_basic())
                                .unwrap_or(false);
                            match c {
                                Cap::Ta | Cap::Pa => {}
                                Cap::Ti | Cap::Pi if basic => {}
                                _ => direct_ok = false,
                            }
                        }
                    }
                    for c in &req.ret_caps {
                        checks.push((*c, SiteRef(step, occ.ret)));
                    }
                }
                OccurrenceKind::Inner { .. } => {
                    for (i, caps) in req.arg_caps.iter().enumerate() {
                        let Some(&arg) = occ.args.get(i) else {
                            direct_ok = false;
                            continue;
                        };
                        for c in caps {
                            checks.push((*c, SiteRef(step, arg)));
                        }
                    }
                    for c in &req.ret_caps {
                        checks.push((*c, SiteRef(step, occ.ret)));
                    }
                }
            }
            if !direct_ok {
                continue;
            }
            'world: for w0 in 0..n_worlds {
                for (cap, site) in &checks {
                    if !cap_holds(
                        *cap, *site, w0, *n_asgs, runs, obs, n_worlds, prog, int_domain, core,
                    ) {
                        continue 'world;
                    }
                }
                return Some((w0, step));
            }
        }
    }
    None
}

#[derive(Clone, Copy)]
struct SiteRef(usize, ExprId);

#[allow(clippy::too_many_arguments)]
fn cap_holds(
    cap: Cap,
    site: SiteRef,
    w0: usize,
    n_asgs: usize,
    runs: &[Vec<Vec<StepRun>>],
    obs: &[Vec<String>],
    n_worlds: usize,
    prog: &NProgram,
    int_domain: &[i64],
    core: &[i64],
) -> bool {
    let SiteRef(step, e) = site;
    let is_int_site = prog.get(e).ty == oodb_model::Type::INT;
    let core_keys: BTreeSet<String> = core
        .iter()
        .map(|v| format!("{:?}", Value::Int(*v)))
        .collect();
    match cap {
        Cap::Ta | Cap::Pa => {
            // Image: values the site takes at w0 as the arguments vary.
            let mut image = BTreeSet::new();
            for per_world in runs.iter().take(n_asgs) {
                let k = site_key(&per_world[w0], step, e);
                if k != BOTTOM {
                    image.insert(k);
                }
            }
            match cap {
                Cap::Ta => {
                    // Total: the image covers the site's type domain.
                    let dom: Vec<String> = match &prog.get(e).ty {
                        oodb_model::Type::Basic(oodb_model::BasicType::Int) => int_domain
                            .iter()
                            .map(|i| format!("{:?}", Value::Int(*i)))
                            .collect(),
                        oodb_model::Type::Basic(oodb_model::BasicType::Bool) => {
                            vec![
                                format!("{:?}", Value::Bool(false)),
                                format!("{:?}", Value::Bool(true)),
                            ]
                        }
                        // Other types have no enumerable bounded domain:
                        // never report total alterability (under-claims are
                        // safe for the soundness direction).
                        _ => return false,
                    };
                    dom.len() >= 2 && dom.iter().all(|k| image.contains(k))
                }
                Cap::Pa => image.len() >= 2,
                _ => unreachable!("outer match restricts to alterability"),
            }
        }
        Cap::Ti | Cap::Pi => {
            for a0 in 0..n_asgs {
                // Prior: the site's values across all worlds for these
                // probes. Posterior: across worlds indistinguishable from
                // w0 by their observations.
                let target_obs = &obs[a0][w0];
                let mut prior = BTreeSet::new();
                let mut posterior = BTreeSet::new();
                for w in 0..n_worlds {
                    let k = site_key(&runs[a0][w], step, e);
                    prior.insert(k.clone());
                    if &obs[a0][w] == target_obs {
                        posterior.insert(k);
                    }
                }
                let ok = match cap {
                    Cap::Ti => posterior.len() == 1 && !posterior.contains(BOTTOM),
                    Cap::Pi => {
                        let shrunk = !posterior.is_empty()
                            && !posterior.contains(BOTTOM)
                            && posterior.len() < prior.len();
                        if shrunk && is_int_site {
                            // Require an excluded value in the domains'
                            // common core (see attack_requirement).
                            prior.difference(&posterior).any(|v| core_keys.contains(v))
                        } else {
                            shrunk
                        }
                    }
                    _ => unreachable!("outer match restricts to inferability"),
                };
                if ok {
                    return true;
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_lang::{parse_requirement, parse_schema};

    const STOCKBROKER: &str = r#"
        class Broker { salary: int, budget: int }
        fn checkBudget(broker: Broker): bool {
          r_budget(broker) >= r_salary(broker)
        }
        user clerk { checkBudget, w_budget }
        user safe_clerk { checkBudget }
    "#;

    fn schema() -> Schema {
        let s = parse_schema(STOCKBROKER).unwrap();
        oodb_lang::check_schema(&s).unwrap();
        s
    }

    #[test]
    fn clerk_attack_succeeds() {
        // With w_budget the clerk pins the salary by bracketing it: probe
        // below (false ⇒ salary ≥ v+1) and at the value (true ⇒ salary ≤ v).
        // Over unbounded integers this needs two write+probe rounds — four
        // steps. (Three steps give only one bound: partial, not total.)
        let s = schema();
        let req = parse_requirement("(clerk, r_salary(x) : ti)").unwrap();
        let cfg = AttackerConfig {
            strategies: StrategySpec {
                max_steps: 4,
                max_shapes: 64,
                ..StrategySpec::default()
            },
            ..AttackerConfig::default()
        };
        let out = attack_requirement(&s, &req, &cfg).unwrap();
        assert!(out.achieved, "bracketing probes must pin the salary");
        let w = out.witness.unwrap();
        assert!(w.shape.iter().any(|f| f == "w_budget"));

        // And indeed three steps only yield one bound: no ti.
        let cfg3 = AttackerConfig {
            strategies: StrategySpec {
                max_steps: 3,
                ..StrategySpec::default()
            },
            ..AttackerConfig::default()
        };
        let out = attack_requirement(&s, &req, &cfg3).unwrap();
        assert!(!out.achieved, "one bound is not total inferability over Z");
    }

    #[test]
    fn safe_clerk_attack_fails_for_ti() {
        let s = schema();
        let req = parse_requirement("(safe_clerk, r_salary(x) : ti)").unwrap();
        let out = attack_requirement(&s, &req, &AttackerConfig::small()).unwrap();
        assert!(!out.achieved, "one comparison cannot pin a 3-value salary");
    }

    #[test]
    fn safe_clerk_gets_no_marginal_partial_inference() {
        // budget >= salary with BOTH sides secret: the observation is a
        // joint half-plane that constrains no marginal over unbounded
        // integers — the attacker (with its core-domain discipline) must
        // not claim pi.
        let s = schema();
        let req = parse_requirement("(safe_clerk, r_salary(x) : pi)").unwrap();
        let out = attack_requirement(&s, &req, &AttackerConfig::small()).unwrap();
        assert!(!out.achieved, "joint half-planes constrain no marginal");
    }

    #[test]
    fn clerk_with_write_gets_partial_inference_in_one_probe() {
        // With w_budget one probe pins salary to a half-line: genuine pi.
        let s = schema();
        let req = parse_requirement("(clerk, r_salary(x) : pi)").unwrap();
        let out = attack_requirement(&s, &req, &AttackerConfig::small()).unwrap();
        assert!(out.achieved, "set budget = v, observe salary <= v or > v");
    }

    #[test]
    fn unreachable_target_fails() {
        let s = parse_schema(
            r#"
            class C { a: int, b: int }
            fn getA(c: C): int { r_a(c) }
            user u { getA }
            "#,
        )
        .unwrap();
        let req = parse_requirement("(u, r_b(x) : pi)").unwrap();
        let out = attack_requirement(&s, &req, &AttackerConfig::small()).unwrap();
        assert!(!out.achieved);
    }

    #[test]
    fn direct_grant_read_is_trivially_inferable() {
        let s = parse_schema(
            r#"
            class C { a: int }
            user u { r_a }
            "#,
        )
        .unwrap();
        let req = parse_requirement("(u, r_a(x) : ti)").unwrap();
        let out = attack_requirement(&s, &req, &AttackerConfig::small()).unwrap();
        assert!(out.achieved);
    }

    #[test]
    fn write_argument_is_totally_alterable() {
        let s = parse_schema(
            r#"
            class C { a: int }
            fn setA(c: C, v: int): null { w_a(c, v) }
            user u { setA }
            "#,
        )
        .unwrap();
        let req = parse_requirement("(u, w_a(x, v: ta))").unwrap();
        let out = attack_requirement(&s, &req, &AttackerConfig::small()).unwrap();
        assert!(out.achieved, "v flows straight into the write");
    }

    #[test]
    fn constant_write_is_not_alterable() {
        let s = parse_schema(
            r#"
            class C { a: int }
            fn reset(c: C): null { w_a(c, 0) }
            user u { reset }
            "#,
        )
        .unwrap();
        let req = parse_requirement("(u, w_a(x, v: pa))").unwrap();
        let out = attack_requirement(&s, &req, &AttackerConfig::small()).unwrap();
        assert!(!out.achieved, "the written value is the constant 0");
    }
}
