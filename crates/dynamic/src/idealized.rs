//! Idealized deduction: `I(E)` over **unbounded** integer domains.
//!
//! The possible-worlds machinery in [`crate::attack`] grounds `Dom(int)` in
//! a small finite set, which lets *co-domain truncation* masquerade as
//! inference: observing `a0² − a1 = 9` pins `a1` when secrets live in
//! `{0,1,2}` (only `a0 = 3` has a representable square) but constrains the
//! marginal of `a1` not at all over ℤ. Scale-stability filters many such
//! artefacts; polynomially-growing ones survive any fixed domain.
//!
//! This module is the artifact-free arbiter for **inferability** claims: a
//! propagation engine identical in structure to [`crate::infer`], but whose
//! variable domains are abstract subsets of ℤ —
//!
//! ```text
//! ZSet ::= ⊤ | Finite{…} | [lo, hi] | [lo, +∞) | (−∞, hi]
//! ```
//!
//! Every site starts at ⊤ ("the user knows nothing about values they have
//! not observed"); only *deductions* — pinned observations, arithmetic
//! inversions, half-planes from comparisons, equality meets, diagonal
//! inversions — can narrow a domain. All transfer functions only ever
//! *under*-approximate what is deducible (unsupported combinations leave
//! the domain unchanged), so a `ti`/`pi` claim from this engine is valid
//! over ℤ, never a truncation artefact.
//!
//! `ti[site]` = domain narrowed to a singleton; `pi[site]` = domain
//! excludes at least one *core* value (the experiment's common integer
//! domain), i.e. a marginal constraint with actual content.

use crate::eval::eval_outer;
use crate::infer::Probe;
use oodb_engine::Database;
use oodb_model::Value;
use secflow::unfold::{ExprId, NKind, NProgram};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Cap on explicit finite sets; bigger sets degrade to their interval hull.
const FINITE_CAP: usize = 512;

/// An abstract subset of ℤ.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ZSet {
    /// All integers (no knowledge).
    Top,
    /// Exactly these values.
    Finite(BTreeSet<i64>),
    /// `[lo, hi]`, `[lo, ∞)` or `(−∞, hi]`; at least one bound present.
    Interval {
        /// Lower bound (inclusive), if any.
        lo: Option<i64>,
        /// Upper bound (inclusive), if any.
        hi: Option<i64>,
    },
}

impl ZSet {
    /// Singleton.
    pub fn one(v: i64) -> ZSet {
        ZSet::Finite([v].into_iter().collect())
    }

    fn finite(set: BTreeSet<i64>) -> ZSet {
        if set.len() > FINITE_CAP {
            let lo = *set.iter().next().expect("non-empty");
            let hi = *set.iter().last().expect("non-empty");
            ZSet::Interval {
                lo: Some(lo),
                hi: Some(hi),
            }
        } else {
            ZSet::Finite(set)
        }
    }

    /// Is the set exactly one value?
    pub fn singleton(&self) -> Option<i64> {
        match self {
            ZSet::Finite(s) if s.len() == 1 => s.iter().next().copied(),
            ZSet::Interval {
                lo: Some(a),
                hi: Some(b),
            } if a == b => Some(*a),
            _ => None,
        }
    }

    /// Does the set (provably) exclude `v`?
    pub fn excludes(&self, v: i64) -> bool {
        match self {
            ZSet::Top => false,
            ZSet::Finite(s) => !s.contains(&v),
            ZSet::Interval { lo, hi } => {
                lo.map(|l| v < l).unwrap_or(false) || hi.map(|h| v > h).unwrap_or(false)
            }
        }
    }

    /// Greatest lower bound of the two sets (set intersection, abstracted).
    pub fn meet(&self, other: &ZSet) -> ZSet {
        match (self, other) {
            (ZSet::Top, x) | (x, ZSet::Top) => x.clone(),
            (ZSet::Finite(a), ZSet::Finite(b)) => {
                let s: BTreeSet<i64> = a.intersection(b).copied().collect();
                if s.is_empty() {
                    // Contradiction: keep the smaller side (defensive — can
                    // only happen via an unsound caller pin).
                    self.clone()
                } else {
                    ZSet::Finite(s)
                }
            }
            (ZSet::Finite(a), iv @ ZSet::Interval { .. })
            | (iv @ ZSet::Interval { .. }, ZSet::Finite(a)) => {
                let s: BTreeSet<i64> = a.iter().copied().filter(|v| !iv.excludes(*v)).collect();
                if s.is_empty() {
                    ZSet::Finite(a.clone())
                } else {
                    ZSet::Finite(s)
                }
            }
            (ZSet::Interval { lo: l1, hi: h1 }, ZSet::Interval { lo: l2, hi: h2 }) => {
                let lo = match (l1, l2) {
                    (Some(a), Some(b)) => Some(*a.max(b)),
                    (a, b) => a.or(*b),
                };
                let hi = match (h1, h2) {
                    (Some(a), Some(b)) => Some(*a.min(b)),
                    (a, b) => a.or(*b),
                };
                match (lo, hi) {
                    (Some(a), Some(b)) if a > b => self.clone(), // contradiction: defensive
                    (Some(a), Some(b)) if (b - a) <= FINITE_CAP as i64 => {
                        ZSet::Finite((a..=b).collect())
                    }
                    _ => ZSet::Interval { lo, hi },
                }
            }
        }
    }

    fn bounds(&self) -> (Option<i64>, Option<i64>) {
        match self {
            ZSet::Top => (None, None),
            ZSet::Finite(s) => (s.iter().next().copied(), s.iter().last().copied()),
            ZSet::Interval { lo, hi } => (*lo, *hi),
        }
    }

    fn as_finite(&self) -> Option<&BTreeSet<i64>> {
        match self {
            ZSet::Finite(s) => Some(s),
            _ => None,
        }
    }
}

/// Abstract knowledge about one site's value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IDom {
    /// Nothing known.
    Top,
    /// An integer site.
    Int(ZSet),
    /// A finite set of non-integer values (bools, strings, objects, null).
    Vals(BTreeSet<Value>),
}

impl IDom {
    fn pin(v: &Value) -> IDom {
        match v {
            Value::Int(i) => IDom::Int(ZSet::one(*i)),
            other => IDom::Vals([other.clone()].into_iter().collect()),
        }
    }

    /// Exactly one value known?
    pub fn singleton(&self) -> bool {
        match self {
            IDom::Top => false,
            IDom::Int(z) => z.singleton().is_some(),
            IDom::Vals(s) => s.len() == 1,
        }
    }

    fn meet(&self, other: &IDom) -> IDom {
        match (self, other) {
            (IDom::Top, x) | (x, IDom::Top) => x.clone(),
            (IDom::Int(a), IDom::Int(b)) => IDom::Int(a.meet(b)),
            (IDom::Vals(a), IDom::Vals(b)) => {
                let s: BTreeSet<Value> = a.intersection(b).cloned().collect();
                if s.is_empty() {
                    self.clone()
                } else {
                    IDom::Vals(s)
                }
            }
            // Type mismatch: defensive, keep the left.
            _ => self.clone(),
        }
    }

    fn as_int(&self) -> Option<&ZSet> {
        match self {
            IDom::Int(z) => Some(z),
            _ => None,
        }
    }

    fn as_bool_singleton(&self) -> Option<bool> {
        match self {
            IDom::Vals(s) if s.len() == 1 => s.iter().next().and_then(Value::as_bool),
            _ => None,
        }
    }
}

/// A site: (probe step, numbered occurrence) — as in [`crate::infer`].
pub type Site = (usize, ExprId);

/// The deductions of the idealized engine for one instance.
#[derive(Debug)]
pub struct IdealDeductions {
    domains: HashMap<Site, IDom>,
}

impl IdealDeductions {
    /// Total inferability over ℤ: the domain is a singleton.
    pub fn is_total(&self, site: Site) -> bool {
        self.domains
            .get(&site)
            .map(IDom::singleton)
            .unwrap_or(false)
    }

    /// Partial inferability with content: the domain provably excludes one
    /// of the `core` values (for int sites), or shrank below the full bool
    /// domain (for bool sites).
    pub fn is_partial(&self, site: Site, core: &[i64]) -> bool {
        match self.domains.get(&site) {
            None | Some(IDom::Top) => false,
            Some(IDom::Int(z)) => core.iter().any(|v| z.excludes(*v)),
            Some(IDom::Vals(s)) => s.len() == 1,
        }
    }

    /// The abstract domain of a site.
    pub fn domain(&self, site: Site) -> Option<&IDom> {
        self.domains.get(&site)
    }
}

/// Run the idealized engine for the instance obtained by executing `probes`
/// against `world`.
pub fn infer_idealized(prog: &NProgram, probes: &[Probe], world: &Database) -> IdealDeductions {
    // Execute once to obtain the observations and the concrete dataflow.
    let mut db = world.clone();
    let actual: Vec<Option<HashMap<ExprId, Value>>> = probes
        .iter()
        .map(|p| {
            eval_outer(&mut db, prog, p.outer, &p.args)
                .ok()
                .map(|(_, sites)| sites)
        })
        .collect();

    let mut domains: HashMap<Site, IDom> = HashMap::new();

    // ---- Pins: constants, supplied arguments, observed (basic) results.
    for (t, probe) in probes.iter().enumerate() {
        let Some(sites) = &actual[t] else { continue };
        for e in prog.iter() {
            if prog.outer_index_of(e.id) != Some(probe.outer) {
                continue;
            }
            match &e.kind {
                NKind::Const(l) => {
                    domains.insert((t, e.id), IDom::pin(&l.to_value()));
                }
                NKind::ArgVar { param, .. } => {
                    if let Some(v) = probe.args.get(*param) {
                        domains.insert((t, e.id), IDom::pin(v));
                    }
                }
                _ => {}
            }
        }
        let outer = &prog.outers[probe.outer];
        let root = prog.get(outer.root);
        if root.ty.is_basic() {
            if let Some(v) = sites.get(&outer.root) {
                domains.insert((t, outer.root), IDom::pin(v));
            }
        }
    }

    // ---- Equalities (as in crate::infer: syntactic + concrete cells).
    let equalities = instance_equalities(prog, probes, &actual);
    let classes = union_find(&equalities);

    // ---- Saturate.
    let get = |domains: &HashMap<Site, IDom>, s: Site| -> IDom {
        domains.get(&s).cloned().unwrap_or(IDom::Top)
    };
    for _round in 0..64 {
        let mut changed = false;

        // Equality meets.
        for (a, b) in &equalities {
            let da = get(&domains, *a);
            let db_ = get(&domains, *b);
            let m = da.meet(&db_);
            if m != da {
                domains.insert(*a, m.clone());
                changed = true;
            }
            if m != db_ {
                domains.insert(*b, m);
                changed = true;
            }
        }

        // Basic-function transfer functions.
        for (t, step) in actual.iter().enumerate() {
            if step.is_none() {
                continue;
            }
            let outer_idx = probes[t].outer;
            for e in prog.iter() {
                if prog.outer_index_of(e.id) != Some(outer_idx) {
                    continue;
                }
                let NKind::Basic(op, args) = &e.kind else {
                    continue;
                };
                let arg_doms: Vec<IDom> = args.iter().map(|a| get(&domains, (t, *a))).collect();
                let ret_dom = get(&domains, (t, e.id));
                let diag =
                    args.len() == 2 && find(&classes, (t, args[0])) == find(&classes, (t, args[1]));

                // Forward.
                let fwd = forward(*op, &arg_doms, diag);
                let new_ret = ret_dom.meet(&fwd);
                if new_ret != ret_dom {
                    domains.insert((t, e.id), new_ret.clone());
                    changed = true;
                }
                // Backward, per argument.
                for (i, a) in args.iter().enumerate() {
                    let refined = backward(*op, i, &new_ret, &arg_doms, diag);
                    let cur = &arg_doms[i];
                    let met = cur.meet(&refined);
                    if met != *cur {
                        domains.insert((t, *a), met);
                        changed = true;
                    }
                }
            }
        }

        if !changed {
            break;
        }
    }

    IdealDeductions { domains }
}

// ---------------------------------------------------------------- helpers

fn instance_equalities(
    prog: &NProgram,
    probes: &[Probe],
    actual: &[Option<HashMap<ExprId, Value>>],
) -> Vec<(Site, Site)> {
    let mut eqs: Vec<(Site, Site)> = Vec::new();
    let mut arg_occ: Vec<(Site, usize)> = Vec::new(); // (site, param) with step in site
    for (t, probe) in probes.iter().enumerate() {
        if actual[t].is_none() {
            continue;
        }
        for e in prog.iter() {
            if prog.outer_index_of(e.id) != Some(probe.outer) {
                continue;
            }
            match &e.kind {
                NKind::LetVar { binding, .. } => eqs.push(((t, e.id), (t, *binding))),
                NKind::Let { body, .. } => eqs.push(((t, e.id), (t, *body))),
                NKind::ArgVar { param, .. } => arg_occ.push(((t, e.id), *param)),
                _ => {}
            }
        }
    }
    for (i, (s1, p1)) in arg_occ.iter().enumerate() {
        for (s2, p2) in &arg_occ[i + 1..] {
            let v1 = probes[s1.0].args.get(*p1);
            let v2 = probes[s2.0].args.get(*p2);
            if v1.is_some() && v1 == v2 {
                eqs.push((*s1, *s2));
            }
        }
    }
    // Concrete attribute cells: read ↔ latest preceding write, read ↔ read.
    #[derive(Clone)]
    enum Ev {
        W(Site),
        R(Site),
    }
    let mut cells: BTreeMap<(u64, String), Vec<Ev>> = BTreeMap::new();
    for (t, step) in actual.iter().enumerate() {
        let Some(sites) = step else { continue };
        let outer_idx = probes[t].outer;
        for e in prog.iter() {
            if prog.outer_index_of(e.id) != Some(outer_idx) {
                continue;
            }
            match &e.kind {
                NKind::Read(attr, recv) => {
                    if let Some(Value::Obj(oid)) = sites.get(recv) {
                        cells
                            .entry((oid.raw(), attr.to_string()))
                            .or_default()
                            .push(Ev::R((t, e.id)));
                    }
                }
                NKind::Write(attr, recv, val) => {
                    if let Some(Value::Obj(oid)) = sites.get(recv) {
                        cells
                            .entry((oid.raw(), attr.to_string()))
                            .or_default()
                            .push(Ev::W((t, *val)));
                    }
                }
                _ => {}
            }
        }
    }
    for events in cells.values() {
        let mut last_write: Option<Site> = None;
        let mut reads: Vec<Site> = Vec::new();
        for ev in events {
            match ev {
                Ev::W(v) => {
                    last_write = Some(*v);
                    reads.clear();
                }
                Ev::R(site) => {
                    if let Some(w) = last_write {
                        eqs.push((*site, w));
                    }
                    for r in &reads {
                        eqs.push((*site, *r));
                    }
                    reads.push(*site);
                }
            }
        }
    }
    eqs
}

fn union_find(eqs: &[(Site, Site)]) -> HashMap<Site, Site> {
    let mut parent: HashMap<Site, Site> = HashMap::new();
    for (a, b) in eqs {
        let ra = find_mut(&mut parent, *a);
        let rb = find_mut(&mut parent, *b);
        if ra != rb {
            parent.insert(ra, rb);
        }
    }
    parent
}

fn find_mut(parent: &mut HashMap<Site, Site>, x: Site) -> Site {
    let p = *parent.entry(x).or_insert(x);
    if p == x {
        x
    } else {
        let r = find_mut(parent, p);
        parent.insert(x, r);
        r
    }
}

fn find(parent: &HashMap<Site, Site>, x: Site) -> Site {
    let mut cur = x;
    while let Some(&p) = parent.get(&cur) {
        if p == cur {
            break;
        }
        cur = p;
    }
    cur
}

/// Saturating interval ops (`None` = unbounded).
fn opt_add(a: Option<i64>, b: Option<i64>) -> Option<i64> {
    a?.checked_add(b?)
}

fn opt_neg(a: Option<i64>) -> Option<i64> {
    a?.checked_neg()
}

fn forward(op: oodb_lang::BasicOp, args: &[IDom], diag: bool) -> IDom {
    use oodb_lang::BasicOp::*;
    // Exact finite-set evaluation when every operand is finite.
    let finite_args: Option<Vec<Vec<Value>>> = args
        .iter()
        .map(|d| match d {
            IDom::Int(z) => z
                .as_finite()
                .map(|s| s.iter().map(|v| Value::Int(*v)).collect()),
            IDom::Vals(s) => Some(s.iter().cloned().collect()),
            IDom::Top => None,
        })
        .collect();
    if let Some(fa) = finite_args {
        let combos: usize = fa.iter().map(Vec::len).product();
        if combos <= FINITE_CAP {
            let mut ints = BTreeSet::new();
            let mut vals = BTreeSet::new();
            let idx: Vec<usize> = vec![0; fa.len()];
            let mut idx = idx;
            loop {
                let tuple: Vec<Value> = idx.iter().zip(&fa).map(|(i, c)| c[*i].clone()).collect();
                let skip_diag = diag && fa.len() == 2 && tuple[0] != tuple[1];
                if !skip_diag {
                    if let Ok(r) = oodb_engine::ops::eval_basic(op, &tuple) {
                        match r {
                            Value::Int(i) => {
                                ints.insert(i);
                            }
                            other => {
                                vals.insert(other);
                            }
                        }
                    }
                }
                // increment
                let mut k = 0;
                loop {
                    if k == idx.len() {
                        // done
                        if !ints.is_empty() && vals.is_empty() {
                            return IDom::Int(ZSet::finite(ints));
                        }
                        if !vals.is_empty() && ints.is_empty() {
                            return IDom::Vals(vals);
                        }
                        return IDom::Top;
                    }
                    idx[k] += 1;
                    if idx[k] < fa[k].len() {
                        break;
                    }
                    idx[k] = 0;
                    k += 1;
                }
                if idx.iter().all(|&x| x == 0) {
                    if !ints.is_empty() && vals.is_empty() {
                        return IDom::Int(ZSet::finite(ints));
                    }
                    if !vals.is_empty() && ints.is_empty() {
                        return IDom::Vals(vals);
                    }
                    return IDom::Top;
                }
            }
        }
    }
    // Interval reasoning for addition/subtraction/negation.
    match op {
        Add => {
            let (l1, h1) = int_bounds(&args[0]);
            let (l2, h2) = int_bounds(&args[1]);
            interval(opt_add(l1, l2), opt_add(h1, h2))
        }
        Sub => {
            let (l1, h1) = int_bounds(&args[0]);
            let (l2, h2) = int_bounds(&args[1]);
            interval(opt_add(l1, opt_neg(h2)), opt_add(h1, opt_neg(l2)))
        }
        Neg => {
            let (l, h) = int_bounds(&args[0]);
            interval(opt_neg(h), opt_neg(l))
        }
        _ => IDom::Top,
    }
}

fn int_bounds(d: &IDom) -> (Option<i64>, Option<i64>) {
    match d {
        IDom::Int(z) => z.bounds(),
        _ => (None, None),
    }
}

fn interval(lo: Option<i64>, hi: Option<i64>) -> IDom {
    if lo.is_none() && hi.is_none() {
        IDom::Top
    } else {
        IDom::Int(ZSet::Interval { lo, hi })
    }
}

/// Refinement for argument `i` from the result and the other operands.
/// Returning [`IDom::Top`] means "no deduction" — always sound.
fn backward(op: oodb_lang::BasicOp, i: usize, ret: &IDom, args: &[IDom], diag: bool) -> IDom {
    use oodb_lang::BasicOp::*;
    match op {
        Add => {
            if diag {
                // a + a = r  ⇒  a = r/2 (exact halves only).
                if let Some(rf) = ret.as_int().and_then(ZSet::as_finite) {
                    let s: BTreeSet<i64> =
                        rf.iter().filter(|r| *r % 2 == 0).map(|r| r / 2).collect();
                    if !s.is_empty() {
                        return IDom::Int(ZSet::finite(s));
                    }
                    return IDom::Top;
                }
            }
            // a = ret − b.
            let j = 1 - i;
            backward_affine(ret, &args[j], /*sub=*/ true)
        }
        Sub => {
            if diag {
                return IDom::Top; // a − a = 0 reveals nothing about a.
            }
            if i == 0 {
                // a = ret + b.
                backward_affine(ret, &args[1], false)
            } else {
                // b = a − ret.
                backward_affine(&args[0], ret, true)
            }
        }
        Neg => match ret {
            IDom::Int(z) => match z {
                ZSet::Finite(s) => IDom::Int(ZSet::finite(
                    s.iter().filter_map(|v| v.checked_neg()).collect(),
                )),
                ZSet::Interval { lo, hi } => interval(opt_neg(*hi), opt_neg(*lo)),
                ZSet::Top => IDom::Top,
            },
            _ => IDom::Top,
        },
        Mul => {
            if diag {
                // a · a = r  ⇒  a ∈ {±√r}.
                if let Some(rf) = ret.as_int().and_then(ZSet::as_finite) {
                    let mut s = BTreeSet::new();
                    for r in rf {
                        if *r >= 0 {
                            let q = (*r as f64).sqrt().round() as i64;
                            for c in [q - 1, q, q + 1] {
                                if c.checked_mul(c) == Some(*r) {
                                    s.insert(c);
                                    s.insert(-c);
                                }
                            }
                        }
                    }
                    if !s.is_empty() {
                        return IDom::Int(ZSet::finite(s));
                    }
                }
                return IDom::Top;
            }
            // a = ret / b for every exactly-dividing pair, when both finite.
            let j = 1 - i;
            let (rf, bf) = (
                ret.as_int().and_then(ZSet::as_finite),
                args[j].as_int().and_then(ZSet::as_finite),
            );
            if let (Some(rf), Some(bf)) = (rf, bf) {
                if rf.len() * bf.len() <= FINITE_CAP {
                    let mut s = BTreeSet::new();
                    let mut complete = true;
                    for r in rf {
                        for b in bf {
                            if *b != 0 {
                                if r % b == 0 {
                                    s.insert(r / b);
                                }
                            } else if *r == 0 {
                                // 0 · a = 0 for every a: no constraint.
                                complete = false;
                            }
                        }
                    }
                    if complete && !s.is_empty() {
                        return IDom::Int(ZSet::finite(s));
                    }
                }
            }
            IDom::Top
        }
        Ge | Gt | Le | Lt => {
            let Some(truth) = ret.as_bool_singleton() else {
                return IDom::Top;
            };
            let j = 1 - i;
            let (lo_j, hi_j) = int_bounds(&args[j]);
            // Normalise to "arg_i REL arg_j".
            // i == 0: a OP b; i == 1: b = other side.
            let (ge_like, strict) = match op {
                Ge => (true, false),
                Gt => (true, true),
                Le => (false, false),
                Lt => (false, true),
                _ => unreachable!("outer match restricts"),
            };
            // For argument position 1 the relation flips.
            let ge = if i == 0 { ge_like } else { !ge_like };
            // Apply truth.
            let ge = if truth { ge } else { !ge };
            let strict_eff = if truth { strict } else { !strict };
            if ge {
                // arg_i >= other (or > when strict): lower bound from the
                // other's lower bound.
                match lo_j {
                    Some(l) => interval(Some(l + i64::from(strict_eff)), None),
                    None => IDom::Top,
                }
            } else {
                match hi_j {
                    Some(h) => interval(None, Some(h - i64::from(strict_eff))),
                    None => IDom::Top,
                }
            }
        }
        EqOp => {
            if ret.as_bool_singleton() == Some(true) {
                args[1 - i].clone()
            } else {
                IDom::Top
            }
        }
        NeOp => {
            if ret.as_bool_singleton() == Some(false) {
                args[1 - i].clone()
            } else {
                IDom::Top
            }
        }
        And => {
            if ret.as_bool_singleton() == Some(true) {
                IDom::Vals([Value::Bool(true)].into_iter().collect())
            } else {
                IDom::Top
            }
        }
        Or => {
            if ret.as_bool_singleton() == Some(false) {
                IDom::Vals([Value::Bool(false)].into_iter().collect())
            } else {
                IDom::Top
            }
        }
        Not => match ret.as_bool_singleton() {
            Some(b) => IDom::Vals([Value::Bool(!b)].into_iter().collect()),
            None => IDom::Top,
        },
        Div | Mod | Concat => IDom::Top,
    }
}

/// `true`: result = a − b; `false`: result = a + b — both with finite sets
/// or interval bounds.
fn backward_affine(a: &IDom, b: &IDom, sub: bool) -> IDom {
    let (af, bf) = (
        a.as_int().and_then(ZSet::as_finite),
        b.as_int().and_then(ZSet::as_finite),
    );
    if let (Some(af), Some(bf)) = (af, bf) {
        if af.len() * bf.len() <= FINITE_CAP {
            let mut s = BTreeSet::new();
            for x in af {
                for y in bf {
                    let r = if sub {
                        x.checked_sub(*y)
                    } else {
                        x.checked_add(*y)
                    };
                    if let Some(r) = r {
                        s.insert(r);
                    }
                }
            }
            if !s.is_empty() {
                return IDom::Int(ZSet::finite(s));
            }
        }
    }
    let (la, ha) = int_bounds(a);
    let (lb, hb) = int_bounds(b);
    if sub {
        interval(opt_add(la, opt_neg(hb)), opt_add(ha, opt_neg(lb)))
    } else {
        interval(opt_add(la, lb), opt_add(ha, hb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worlds::{enumerate_worlds, WorldSpec};
    use oodb_lang::parse_schema;

    fn setup(src: &str, user: &str) -> (NProgram, Vec<Database>) {
        let schema = parse_schema(src).unwrap();
        oodb_lang::check_schema(&schema).unwrap();
        let prog = NProgram::unfold(&schema, schema.user_str(user).unwrap()).unwrap();
        let worlds = enumerate_worlds(
            &schema,
            &WorldSpec {
                objects_per_class: 1,
                int_domain: vec![0, 1, 2, 3],
                max_worlds: 4096,
            },
        )
        .unwrap();
        (prog, worlds)
    }

    fn obj(db: &Database, class: &str) -> Value {
        Value::Obj(db.extent(&class.into())[0])
    }

    fn read_site(prog: &NProgram, attr: &str) -> ExprId {
        prog.iter()
            .find(|e| matches!(&e.kind, NKind::Read(a, _) if a.as_str() == attr))
            .unwrap()
            .id
    }

    #[test]
    fn zset_algebra() {
        let f = ZSet::finite([1, 2, 3].into_iter().collect());
        assert_eq!(ZSet::one(2).singleton(), Some(2));
        assert!(f.excludes(5));
        assert!(!f.excludes(2));
        let half = ZSet::Interval {
            lo: Some(2),
            hi: None,
        };
        assert!(half.excludes(1));
        let m = f.meet(&half);
        assert_eq!(m, ZSet::Finite([2, 3].into_iter().collect()));
        // Interval ∩ interval with a small range materialises.
        let a = ZSet::Interval {
            lo: Some(0),
            hi: None,
        };
        let b = ZSet::Interval {
            lo: None,
            hi: Some(2),
        };
        assert_eq!(a.meet(&b), ZSet::Finite([0, 1, 2].into_iter().collect()));
    }

    #[test]
    fn write_read_pins_over_z() {
        let (prog, worlds) = setup(
            r#"
            class C { a: int }
            fn getA(c: C): int { r_a(c) }
            user u { getA, w_a }
            "#,
            "u",
        );
        let world = &worlds[0];
        let o = obj(world, "C");
        let probes = vec![
            Probe {
                outer: 1,
                args: vec![o.clone(), Value::Int(3)],
            },
            Probe {
                outer: 0,
                args: vec![o],
            },
        ];
        let d = infer_idealized(&prog, &probes, world);
        assert!(d.is_total((1, prog.outers[0].root)));
    }

    #[test]
    fn binary_search_narrows_and_pins() {
        let (prog, worlds) = setup(
            r#"
            class Broker { salary: int, budget: int }
            fn checkBudget(b: Broker): bool { r_budget(b) >= r_salary(b) }
            user clerk { checkBudget, w_budget }
            "#,
            "clerk",
        );
        let world = worlds
            .iter()
            .find(|w| {
                let o = obj(w, "Broker");
                w.read_attr(&o, &"salary".into()).unwrap() == Value::Int(2)
            })
            .unwrap();
        let o = obj(world, "Broker");
        let salary = read_site(&prog, "salary");
        // budget := 1, probe (false ⇒ salary ≥ 2): a genuine half-plane.
        let probes = vec![
            Probe {
                outer: 1,
                args: vec![o.clone(), Value::Int(1)],
            },
            Probe {
                outer: 0,
                args: vec![o.clone()],
            },
        ];
        let d = infer_idealized(&prog, &probes, world);
        assert!(d.is_partial((1, salary), &[0, 1, 2]));
        assert!(!d.is_total((1, salary)));

        // Add budget := 2, probe (true ⇒ salary ≤ 2): pinned to {2}.
        let probes = vec![
            Probe {
                outer: 1,
                args: vec![o.clone(), Value::Int(1)],
            },
            Probe {
                outer: 0,
                args: vec![o.clone()],
            },
            Probe {
                outer: 1,
                args: vec![o.clone(), Value::Int(2)],
            },
            Probe {
                outer: 0,
                args: vec![o],
            },
        ];
        let d = infer_idealized(&prog, &probes, world);
        assert!(d.is_total((3, salary)), "{:?}", d.domain((3, salary)));
    }

    #[test]
    fn diagonal_sum_inverts_over_z() {
        let (prog, worlds) = setup(
            r#"
            class C { a: int }
            fn leak(c: C): int { r_a(c) + r_a(c) }
            user u { leak }
            "#,
            "u",
        );
        let world = worlds
            .iter()
            .find(|w| {
                let o = obj(w, "C");
                w.read_attr(&o, &"a".into()).unwrap() == Value::Int(2)
            })
            .unwrap();
        let o = obj(world, "C");
        let d = infer_idealized(
            &prog,
            &[Probe {
                outer: 0,
                args: vec![o],
            }],
            world,
        );
        let a = read_site(&prog, "a");
        assert!(d.is_total((0, a)));
    }

    #[test]
    fn quadratic_truncation_artifact_rejected() {
        // f1 = a0·a0 − a1 observed: over ℤ this constrains a1 only to the
        // coset {k² − r}, never a singleton — the seed-485 artefact.
        let (prog, worlds) = setup(
            r#"
            class C { a0: int, a1: int }
            fn f1(c: C): int { r_a0(c) * r_a0(c) - (0 + r_a1(c)) }
            user u { f1 }
            "#,
            "u",
        );
        let a1 = read_site(&prog, "a1");
        for world in &worlds {
            let o = obj(world, "C");
            let d = infer_idealized(
                &prog,
                &[Probe {
                    outer: 0,
                    args: vec![o],
                }],
                world,
            );
            assert!(
                !d.is_total((0, a1)),
                "ti on a1 is a truncation artefact: {:?}",
                d.domain((0, a1))
            );
        }
    }

    #[test]
    fn joint_half_plane_gives_no_marginal() {
        // budget >= salary with both secret: no marginal over ℤ.
        let (prog, worlds) = setup(
            r#"
            class B { salary: int, budget: int }
            fn probe(b: B): bool { r_budget(b) >= r_salary(b) }
            user u { probe }
            "#,
            "u",
        );
        let salary = read_site(&prog, "salary");
        for world in worlds.iter().take(4) {
            let o = obj(world, "B");
            let d = infer_idealized(
                &prog,
                &[Probe {
                    outer: 0,
                    args: vec![o],
                }],
                world,
            );
            assert!(!d.is_partial((0, salary), &[0, 1, 2]));
        }
    }

    #[test]
    fn constant_threshold_gives_genuine_half_plane() {
        let (prog, worlds) = setup(
            r#"
            class P { age: int }
            fn adult(p: P): bool { r_age(p) >= 2 }
            user u { adult }
            "#,
            "u",
        );
        let age = read_site(&prog, "age");
        let world = worlds
            .iter()
            .find(|w| {
                let o = obj(w, "P");
                w.read_attr(&o, &"age".into()).unwrap() == Value::Int(3)
            })
            .unwrap();
        let o = obj(world, "P");
        let d = infer_idealized(
            &prog,
            &[Probe {
                outer: 0,
                args: vec![o],
            }],
            world,
        );
        // true ⇒ age ≥ 2: excludes 0 and 1 of the core.
        assert!(d.is_partial((0, age), &[0, 1, 2]));
        assert!(!d.is_total((0, age)));
    }
}
