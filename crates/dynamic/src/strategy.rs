//! Probe-strategy enumeration.
//!
//! A *shape* is a sequence of outer-most functions to invoke — the paper's
//! function sequence `L`. An *assignment* supplies concrete arguments for
//! every step. Enumerating all assignments of a shape gives the attacker
//! the full power of adaptivity over the bounded domain: an adaptive
//! attacker's decision tree is a subset of the exhaustive probe table.

use oodb_model::{Type, Value};
use secflow::unfold::NProgram;

/// Bounds for strategy enumeration.
#[derive(Clone, Debug)]
pub struct StrategySpec {
    /// Maximum probes per sequence.
    pub max_steps: usize,
    /// Values integer arguments range over.
    pub int_domain: Vec<i64>,
    /// Objects available per class (must match the world layout).
    pub objects_per_class: usize,
    /// Hard cap on assignments per shape (shapes above the cap are
    /// skipped and reported).
    pub max_assignments: usize,
    /// Hard cap on shapes.
    pub max_shapes: usize,
}

impl Default for StrategySpec {
    fn default() -> StrategySpec {
        StrategySpec {
            max_steps: 2,
            int_domain: vec![0, 1, 2],
            objects_per_class: 1,
            max_assignments: 4096,
            max_shapes: 512,
        }
    }
}

/// One shape: the outer indexes invoked at each step.
pub type Shape = Vec<usize>;

/// One fully concrete probe sequence: per step, the argument values.
pub type Assignment = Vec<Vec<Value>>;

/// Enumerate shapes: all non-empty sequences over the outers up to
/// `max_steps`, capped at `max_shapes`.
pub fn shapes(prog: &NProgram, spec: &StrategySpec) -> Vec<Shape> {
    let n = prog.outers.len();
    let mut out: Vec<Shape> = Vec::new();
    let mut frontier: Vec<Shape> = vec![Vec::new()];
    for _ in 0..spec.max_steps {
        let mut next = Vec::new();
        for base in &frontier {
            for o in 0..n {
                let mut s = base.clone();
                s.push(o);
                if out.len() < spec.max_shapes {
                    out.push(s.clone());
                }
                next.push(s);
            }
        }
        frontier = next;
        if out.len() >= spec.max_shapes {
            break;
        }
    }
    out
}

/// The candidate values for one parameter type. Object choices are
/// world-independent indices (all worlds share the layout), resolved to
/// OIDs by the runner.
pub fn arg_choices(ty: &Type, spec: &StrategySpec) -> Vec<ArgChoice> {
    match ty {
        Type::Basic(oodb_model::BasicType::Int) => spec
            .int_domain
            .iter()
            .map(|i| ArgChoice::Val(Value::Int(*i)))
            .collect(),
        Type::Basic(oodb_model::BasicType::Bool) => vec![
            ArgChoice::Val(Value::Bool(false)),
            ArgChoice::Val(Value::Bool(true)),
        ],
        Type::Basic(oodb_model::BasicType::Str) => vec![ArgChoice::Val(Value::str("s"))],
        Type::Class(c) => (0..spec.objects_per_class)
            .map(|i| ArgChoice::Object(c.clone(), i))
            .collect(),
        Type::Null => vec![ArgChoice::Val(Value::Null)],
        Type::Set(_) => vec![ArgChoice::Val(Value::set(vec![]))],
    }
}

/// A world-independent argument choice.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgChoice {
    /// A concrete value.
    Val(Value),
    /// The i-th object of a class (same index in every world).
    Object(oodb_model::ClassName, usize),
}

/// Enumerate all assignments for a shape (cross product over per-step,
/// per-parameter choices). Returns `None` when the count exceeds
/// `max_assignments`.
pub fn assignments(
    prog: &NProgram,
    shape: &Shape,
    spec: &StrategySpec,
) -> Option<Vec<Vec<Vec<ArgChoice>>>> {
    // choices[step][param] = candidate list
    let mut choices: Vec<Vec<Vec<ArgChoice>>> = Vec::with_capacity(shape.len());
    let mut total: usize = 1;
    for &o in shape {
        let outer = &prog.outers[o];
        let per_param: Vec<Vec<ArgChoice>> = outer
            .params
            .iter()
            .map(|(_, t)| arg_choices(t, spec))
            .collect();
        for p in &per_param {
            total = total.checked_mul(p.len().max(1))?;
            if total > spec.max_assignments {
                return None;
            }
        }
        choices.push(per_param);
    }
    // Odometer over the flattened choice lists.
    let flat: Vec<(usize, usize)> = choices
        .iter()
        .enumerate()
        .flat_map(|(s, ps)| (0..ps.len()).map(move |p| (s, p)))
        .collect();
    let mut idx = vec![0usize; flat.len()];
    let mut out = Vec::with_capacity(total);
    loop {
        let mut assignment: Vec<Vec<ArgChoice>> = choices
            .iter()
            .map(|ps| Vec::with_capacity(ps.len()))
            .collect();
        for (k, &(s, p)) in flat.iter().enumerate() {
            assignment[s].push(choices[s][p][idx[k]].clone());
        }
        out.push(assignment);
        // Increment.
        let mut i = 0;
        loop {
            if i == idx.len() {
                return Some(out);
            }
            idx[i] += 1;
            if idx[i] < choices[flat[i].0][flat[i].1].len() {
                break;
            }
            idx[i] = 0;
            i += 1;
        }
        if idx.iter().all(|&x| x == 0) {
            return Some(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_lang::parse_schema;

    fn prog() -> NProgram {
        let schema = parse_schema(
            r#"
            class Broker { name: string, salary: int, budget: int, profit: int }
            fn checkBudget(broker: Broker): bool {
              r_budget(broker) >= 10 * r_salary(broker)
            }
            user clerk { checkBudget, w_budget }
            "#,
        )
        .unwrap();
        NProgram::unfold(&schema, schema.user_str("clerk").unwrap()).unwrap()
    }

    #[test]
    fn shapes_enumerated_breadth_first() {
        let p = prog();
        let spec = StrategySpec {
            max_steps: 2,
            ..StrategySpec::default()
        };
        let s = shapes(&p, &spec);
        // 2 outers: 2 shapes of length 1 + 4 of length 2.
        assert_eq!(s.len(), 6);
        assert_eq!(s[0], vec![0]);
        assert_eq!(s[2], vec![0, 0]);
    }

    #[test]
    fn shape_cap() {
        let p = prog();
        let spec = StrategySpec {
            max_steps: 5,
            max_shapes: 10,
            ..StrategySpec::default()
        };
        assert_eq!(shapes(&p, &spec).len(), 10);
    }

    #[test]
    fn assignments_cross_product() {
        let p = prog();
        let spec = StrategySpec {
            int_domain: vec![0, 1, 2],
            objects_per_class: 1,
            ..StrategySpec::default()
        };
        // w_budget(Broker, int): 1 object × 3 ints = 3 assignments.
        let a = assignments(&p, &vec![1], &spec).unwrap();
        assert_eq!(a.len(), 3);
        // checkBudget(Broker): 1.
        let a = assignments(&p, &vec![0], &spec).unwrap();
        assert_eq!(a.len(), 1);
        // [w_budget, checkBudget]: 3 × 1.
        let a = assignments(&p, &vec![1, 0], &spec).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].len(), 2);
        assert_eq!(a[0][0].len(), 2); // two args for w_budget
    }

    #[test]
    fn assignment_cap_returns_none() {
        let p = prog();
        let spec = StrategySpec {
            int_domain: (0..100).collect(),
            max_assignments: 50,
            ..StrategySpec::default()
        };
        assert!(assignments(&p, &vec![1], &spec).is_none());
    }

    #[test]
    fn arg_choices_by_type() {
        let spec = StrategySpec::default();
        assert_eq!(arg_choices(&Type::INT, &spec).len(), 3);
        assert_eq!(arg_choices(&Type::BOOL, &spec).len(), 2);
        assert_eq!(arg_choices(&Type::STR, &spec).len(), 1);
        assert_eq!(arg_choices(&Type::class("C"), &spec).len(), 1);
    }
}
