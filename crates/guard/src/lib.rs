//! # secflow-guard
//!
//! The paper's §5 sketch of an *alternative* to static detection:
//!
//! > *"Another alternative is to develop a mechanism to dynamically detect
//! > security flaws during execution of queries."*
//!
//! This crate implements that mechanism as a drop-in session layer. The
//! guard tracks, per session, the set of functions the user has **actually
//! exercised** (not merely been granted). Before executing a query it runs
//! the same `A(R)` analysis as the static checker — but over
//! `F = exercised ∪ functions(query)` instead of the full capability list —
//! and denies the query whose addition would make a protected requirement
//! violated.
//!
//! The precision/latency trade the paper anticipates falls out directly:
//!
//! * **more precise than static**: a user whose capability *list* combines
//!   dangerously but who never exercises both halves in one session is
//!   never blocked (`A(R)` over the exercised subset stays satisfied);
//! * **fail-stop, not fail-silent**: the flaw is stopped at the first query
//!   that would complete the dangerous combination — *before* it executes,
//!   since the analysis is per function-set, not per observed value;
//! * **cost**: a closure computation per new function combination, paid at
//!   query time (amortised by caching per exercised-set).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use oodb_engine::exec::{authorize, run_query, QueryOutput};
use oodb_engine::{Database, RuntimeError};
use oodb_lang::requirement::Requirement;
use oodb_lang::typeck::check_query;
use oodb_lang::{parse_query, ParseError, Query, TypeError};
use oodb_model::{CapabilityList, FnRef, UserName};
use secflow::algorithm::{check_against, AnalysisError};
use secflow::closure::Closure;
use secflow::unfold::NProgram;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Why a query was denied or failed.
#[derive(Clone, Debug)]
pub enum GuardError {
    /// The query text did not parse.
    Parse(ParseError),
    /// The query did not type-check.
    Type(TypeError),
    /// Ordinary authorization failure (a function outside the capability
    /// list) — same as the unguarded engine.
    Runtime(RuntimeError),
    /// The guard denied the query: executing it would give the session a
    /// function set under which a protected requirement is violated.
    FlawDenied {
        /// The requirement that would become violated.
        requirement: String,
        /// The functions whose combination triggers the flaw.
        function_set: Vec<String>,
    },
    /// The analysis itself failed (budget exceeded, malformed schema).
    Analysis(String),
}

impl fmt::Display for GuardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardError::Parse(e) => write!(f, "{e}"),
            GuardError::Type(e) => write!(f, "{e}"),
            GuardError::Runtime(e) => write!(f, "{e}"),
            GuardError::FlawDenied {
                requirement,
                function_set,
            } => write!(
                f,
                "query denied: with session functions {{{}}} the requirement {requirement} \
                 would be violated",
                function_set.join(", ")
            ),
            GuardError::Analysis(e) => write!(f, "analysis failure: {e}"),
        }
    }
}

impl std::error::Error for GuardError {}

impl From<ParseError> for GuardError {
    fn from(e: ParseError) -> Self {
        GuardError::Parse(e)
    }
}

impl From<TypeError> for GuardError {
    fn from(e: TypeError) -> Self {
        GuardError::Type(e)
    }
}

impl From<RuntimeError> for GuardError {
    fn from(e: RuntimeError) -> Self {
        GuardError::Runtime(e)
    }
}

/// A guarded session: like [`oodb_engine::Session`], plus dynamic flaw
/// detection against a set of protected requirements.
///
/// ```
/// use oodb_engine::Database;
/// use oodb_model::Value;
/// use secflow_guard::{GuardedSession, GuardError};
///
/// let schema = oodb_lang::parse_schema(r#"
///     class Broker { salary: int, budget: int }
///     fn checkBudget(b: Broker): bool { r_budget(b) >= r_salary(b) }
///     user clerk { checkBudget, w_budget }
///     require (clerk, r_salary(x) : ti)
/// "#).unwrap();
/// let mut db = Database::new(schema).unwrap();
/// db.create("Broker", vec![Value::Int(2), Value::Int(5)]).unwrap();
///
/// let mut session = GuardedSession::open_from_schema(&mut db, "clerk");
/// // Probing alone is fine…
/// session.query("select checkBudget(b) from b in Broker").unwrap();
/// // …but combining it with the budget write is denied before execution.
/// let err = session
///     .query("select w_budget(b, 1), checkBudget(b) from b in Broker")
///     .unwrap_err();
/// assert!(matches!(err, GuardError::FlawDenied { .. }));
/// ```
#[derive(Debug)]
pub struct GuardedSession<'db> {
    db: &'db mut Database,
    user: UserName,
    requirements: Vec<Requirement>,
    exercised: BTreeSet<FnRef>,
    denied: usize,
    /// Closure verdicts per function set: the same combination is analysed
    /// once per session, so steady-state query overhead is one map lookup.
    verdict_cache: RefCell<BTreeMap<BTreeSet<FnRef>, Option<String>>>,
}

impl<'db> GuardedSession<'db> {
    /// Open a session protecting the given requirements (typically the
    /// schema's `require` declarations for this user).
    pub fn open(
        db: &'db mut Database,
        user: impl Into<UserName>,
        requirements: Vec<Requirement>,
    ) -> GuardedSession<'db> {
        GuardedSession {
            db,
            user: user.into(),
            requirements,
            exercised: BTreeSet::new(),
            denied: 0,
            verdict_cache: RefCell::new(BTreeMap::new()),
        }
    }

    /// Open a session protecting every schema requirement that names this
    /// user.
    pub fn open_from_schema(
        db: &'db mut Database,
        user: impl Into<UserName>,
    ) -> GuardedSession<'db> {
        let user = user.into();
        let requirements = db
            .schema()
            .requirements
            .iter()
            .filter(|r| r.user == user)
            .cloned()
            .collect();
        GuardedSession::open(db, user, requirements)
    }

    /// The functions this session has exercised so far.
    pub fn exercised(&self) -> &BTreeSet<FnRef> {
        &self.exercised
    }

    /// Queries denied by the guard so far.
    pub fn denied_count(&self) -> usize {
        self.denied
    }

    /// Parse, type-check, authorize, *guard*, and (if allowed) execute.
    pub fn query(&mut self, text: &str) -> Result<QueryOutput, GuardError> {
        let q = parse_query(text)?;
        check_query(self.db.schema(), &q)?;
        authorize(self.db, &self.user, &q)?;
        self.guard(&q)?;
        let out = run_query(self.db, Some(&self.user), &q)?;
        for inv in q.invocations() {
            self.exercised.insert(inv.target.clone());
        }
        Ok(out)
    }

    /// The guard decision for a query, without executing it.
    pub fn would_allow(&self, q: &Query) -> Result<(), GuardError> {
        self.guard(q)
    }

    fn guard(&self, q: &Query) -> Result<(), GuardError> {
        if self.requirements.is_empty() {
            return Ok(());
        }
        let mut set: CapabilityList = self.exercised.iter().cloned().collect();
        for inv in q.invocations() {
            set.grant(inv.target.clone());
        }
        let key: BTreeSet<FnRef> = set.iter().cloned().collect();
        if let Some(cached) = self.verdict_cache.borrow().get(&key) {
            return match cached {
                None => Ok(()),
                Some(requirement) => Err(GuardError::FlawDenied {
                    requirement: requirement.clone(),
                    function_set: key.iter().map(|f| f.to_string()).collect(),
                }),
            };
        }
        let decide = || -> Result<Option<String>, GuardError> {
            let prog = NProgram::unfold(self.db.schema(), &set)
                .map_err(|e| GuardError::Analysis(e.to_string()))?;
            let closure =
                Closure::compute(&prog).map_err(|e| GuardError::Analysis(e.to_string()))?;
            for req in &self.requirements {
                if check_against(&prog, &closure, req).is_violated() {
                    return Ok(Some(req.to_string()));
                }
            }
            Ok(None)
        };
        let verdict = decide()?;
        self.verdict_cache
            .borrow_mut()
            .insert(key.clone(), verdict.clone());
        match verdict {
            None => Ok(()),
            Some(requirement) => Err(GuardError::FlawDenied {
                requirement,
                function_set: key.iter().map(|f| f.to_string()).collect(),
            }),
        }
    }

    /// Record a denial (used by callers that want to keep statistics while
    /// mapping errors).
    pub fn note_denied(&mut self) {
        self.denied += 1;
    }
}

/// Convenience: run a query under the guard, tracking denial statistics.
pub fn guarded_query(
    session: &mut GuardedSession<'_>,
    text: &str,
) -> Result<QueryOutput, GuardError> {
    match session.query(text) {
        Err(e @ GuardError::FlawDenied { .. }) => {
            session.note_denied();
            Err(e)
        }
        other => other,
    }
}

/// Check a whole schema statically (all requirements) — the baseline the
/// guard is compared against in tests and docs.
pub fn static_verdicts(schema: &oodb_lang::Schema) -> Result<Vec<(String, bool)>, AnalysisError> {
    schema
        .requirements
        .iter()
        .map(|r| secflow::algorithm::analyze(schema, r).map(|v| (r.to_string(), v.is_violated())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_lang::parse_schema;
    use oodb_model::Value;

    fn db() -> Database {
        let schema = parse_schema(
            r#"
            class Broker { name: string, salary: int, budget: int }
            fn checkBudget(b: Broker): bool { r_budget(b) >= 10 * r_salary(b) }
            user clerk { checkBudget, w_budget, r_name }
            require (clerk, r_salary(x) : ti)
            "#,
        )
        .unwrap();
        let mut db = Database::new(schema).unwrap();
        db.create(
            "Broker",
            vec![Value::str("John"), Value::Int(150), Value::Int(1000)],
        )
        .unwrap();
        db
    }

    #[test]
    fn benign_queries_pass() {
        let mut db = db();
        let mut s = GuardedSession::open_from_schema(&mut db, "clerk");
        // Reading names and probing alone are fine — the flaw needs the
        // write capability to be exercised too.
        s.query("select r_name(b), checkBudget(b) from b in Broker")
            .unwrap();
        s.query("select checkBudget(b) from b in Broker").unwrap();
        assert_eq!(s.exercised().len(), 2);
        assert_eq!(s.denied_count(), 0);
    }

    #[test]
    fn the_probing_attack_is_denied_before_execution() {
        let mut db = db();
        {
            let mut s = GuardedSession::open_from_schema(&mut db, "clerk");
            let err = s
                .query("select w_budget(b, 1500), checkBudget(b) from b in Broker")
                .unwrap_err();
            assert!(matches!(err, GuardError::FlawDenied { .. }));
            // The write must NOT have happened (fail-stop before execution).
            assert!(s.exercised().is_empty());
        }
        let john = Value::Obj(db.extent(&"Broker".into())[0]);
        assert_eq!(
            db.read_attr(&john, &"budget".into()).unwrap(),
            Value::Int(1000),
            "budget untouched"
        );
    }

    #[test]
    fn split_across_queries_is_still_denied() {
        // Exercising the halves in separate queries doesn't evade the
        // guard: the session's exercised set accumulates.
        let mut db = db();
        let mut s = GuardedSession::open_from_schema(&mut db, "clerk");
        s.query("select w_budget(b, 42) from b in Broker").unwrap();
        let err = s
            .query("select checkBudget(b) from b in Broker")
            .unwrap_err();
        assert!(matches!(err, GuardError::FlawDenied { .. }));
    }

    #[test]
    fn guard_is_more_precise_than_static() {
        // Statically the clerk's LIST is flawed; dynamically, a session
        // that only ever writes budgets (never probes) is never blocked.
        let mut db = db();
        let statically = static_verdicts(db.schema()).unwrap();
        assert!(statically.iter().any(|(_, v)| *v), "list is flawed");

        let mut s = GuardedSession::open_from_schema(&mut db, "clerk");
        for v in [1, 2, 3] {
            s.query(&format!("select w_budget(b, {v}) from b in Broker"))
                .unwrap();
        }
        assert_eq!(s.denied_count(), 0);
    }

    #[test]
    fn ordinary_authorization_still_applies() {
        let mut db = db();
        let mut s = GuardedSession::open_from_schema(&mut db, "clerk");
        let err = s.query("select r_salary(b) from b in Broker").unwrap_err();
        assert!(matches!(err, GuardError::Runtime(_)));
    }

    #[test]
    fn would_allow_is_side_effect_free() {
        let mut db = db();
        let s = GuardedSession::open_from_schema(&mut db, "clerk");
        let q = parse_query("select w_budget(b, 1), checkBudget(b) from b in Broker").unwrap();
        assert!(s.would_allow(&q).is_err());
        assert!(s.exercised().is_empty());
    }

    #[test]
    fn verdict_cache_is_consulted() {
        let mut db = db();
        let mut s = GuardedSession::open_from_schema(&mut db, "clerk");
        // Same query twice: the second guard decision is a cache hit (same
        // function set), and both succeed.
        s.query("select checkBudget(b) from b in Broker").unwrap();
        s.query("select checkBudget(b) from b in Broker").unwrap();
        assert_eq!(s.verdict_cache.borrow().len(), 1);
        // A denial is cached too.
        let _ = s.query("select w_budget(b, 1), checkBudget(b) from b in Broker");
        let _ = s.query("select w_budget(b, 2), checkBudget(b) from b in Broker");
        assert_eq!(s.verdict_cache.borrow().len(), 2);
    }

    #[test]
    fn guarded_query_counts_denials() {
        let mut db = db();
        let mut s = GuardedSession::open_from_schema(&mut db, "clerk");
        let _ = guarded_query(
            &mut s,
            "select w_budget(b, 1), checkBudget(b) from b in Broker",
        );
        assert_eq!(s.denied_count(), 1);
    }
}
