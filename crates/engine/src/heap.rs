//! The mutable object heap.
//!
//! Objects are slots holding a class name plus attribute values in
//! declaration order. Extents (the set of all instances of a class, §2's
//! `(c_name, {obj})` pairs) are maintained incrementally. The heap is
//! `Clone`, which gives cheap database snapshots — the differential
//! experiments reset state between attacker probes by cloning.

use crate::error::RuntimeError;
use oodb_model::{ClassName, Oid, Value};
use std::collections::BTreeMap;

/// One heap slot.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Object {
    class: ClassName,
    attrs: Vec<Value>,
}

/// The object heap.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Heap {
    slots: Vec<Object>,
    extents: BTreeMap<ClassName, Vec<Oid>>,
}

impl Heap {
    /// Empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Allocate an object. The caller (the [`Database`](crate::Database)
    /// layer) is responsible for arity/type agreement with the schema.
    pub fn alloc(&mut self, class: ClassName, attrs: Vec<Value>) -> Oid {
        let oid = Oid::from_raw(self.slots.len() as u64);
        self.extents.entry(class.clone()).or_default().push(oid);
        self.slots.push(Object { class, attrs });
        oid
    }

    /// The class of an object.
    pub fn class_of(&self, oid: Oid) -> Result<&ClassName, RuntimeError> {
        self.slot(oid).map(|o| &o.class)
    }

    /// Read an attribute by declaration index.
    pub fn read(&self, oid: Oid, index: usize) -> Result<&Value, RuntimeError> {
        let obj = self.slot(oid)?;
        obj.attrs.get(index).ok_or(RuntimeError::NoSuchAttribute {
            class: obj.class.clone(),
            attr: format!("#{index}").into(),
        })
    }

    /// Write an attribute by declaration index.
    pub fn write(&mut self, oid: Oid, index: usize, value: Value) -> Result<(), RuntimeError> {
        let obj = self.slot_mut(oid)?;
        match obj.attrs.get_mut(index) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(RuntimeError::NoSuchAttribute {
                class: obj.class.clone(),
                attr: format!("#{index}").into(),
            }),
        }
    }

    /// The extent of a class, in creation order. Unknown classes have empty
    /// extents.
    pub fn extent(&self, class: &ClassName) -> &[Oid] {
        self.extents.get(class).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Is the heap empty?
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    fn slot(&self, oid: Oid) -> Result<&Object, RuntimeError> {
        self.slots
            .get(oid.raw() as usize)
            .ok_or(RuntimeError::DanglingOid { oid })
    }

    fn slot_mut(&mut self, oid: Oid) -> Result<&mut Object, RuntimeError> {
        self.slots
            .get_mut(oid.raw() as usize)
            .ok_or(RuntimeError::DanglingOid { oid })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write() {
        let mut h = Heap::new();
        let oid = h.alloc(ClassName::new("C"), vec![Value::Int(1), Value::Bool(true)]);
        assert_eq!(h.read(oid, 0).unwrap(), &Value::Int(1));
        h.write(oid, 0, Value::Int(42)).unwrap();
        assert_eq!(h.read(oid, 0).unwrap(), &Value::Int(42));
        assert_eq!(h.class_of(oid).unwrap().as_str(), "C");
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn extents_track_creation_order() {
        let mut h = Heap::new();
        let a = h.alloc(ClassName::new("C"), vec![]);
        let _ = h.alloc(ClassName::new("D"), vec![]);
        let c = h.alloc(ClassName::new("C"), vec![]);
        assert_eq!(h.extent(&ClassName::new("C")), &[a, c]);
        assert_eq!(h.extent(&ClassName::new("Nope")), &[] as &[Oid]);
    }

    #[test]
    fn bad_accesses() {
        let mut h = Heap::new();
        let oid = h.alloc(ClassName::new("C"), vec![Value::Int(1)]);
        assert!(matches!(
            h.read(Oid::from_raw(99), 0),
            Err(RuntimeError::DanglingOid { .. })
        ));
        assert!(matches!(
            h.read(oid, 5),
            Err(RuntimeError::NoSuchAttribute { .. })
        ));
        assert!(matches!(
            h.write(oid, 5, Value::Null),
            Err(RuntimeError::NoSuchAttribute { .. })
        ));
    }

    #[test]
    fn clone_is_a_snapshot() {
        let mut h = Heap::new();
        let oid = h.alloc(ClassName::new("C"), vec![Value::Int(1)]);
        let snapshot = h.clone();
        h.write(oid, 0, Value::Int(2)).unwrap();
        assert_eq!(snapshot.read(oid, 0).unwrap(), &Value::Int(1));
        assert_eq!(h.read(oid, 0).unwrap(), &Value::Int(2));
    }
}
