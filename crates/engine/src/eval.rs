//! Evaluator for function-definition-language expressions.
//!
//! Evaluation order is the paper's: arguments left to right, `let` bindings
//! in order, each expression evaluated exactly once. This order matters to
//! both the analysis' numbering scheme (subexpression numbers are assigned
//! "corresponding to the order of the evaluation in the actual execution",
//! §3.3) and to side-effect visibility (a write performed by an earlier
//! subexpression is seen by a later read).

use crate::db::Database;
use crate::error::RuntimeError;
use crate::ops::eval_basic;
use oodb_lang::Expr;
use oodb_model::{Value, VarName};

/// Hard bound on call nesting. The type checker guarantees recursion-freedom
/// so real schemas cannot hit this; it protects against unchecked schemas.
pub const MAX_CALL_DEPTH: usize = 256;

struct Frame {
    vars: Vec<(VarName, Value)>,
}

/// Evaluate `expr` against the database with the given initial variable
/// bindings (the function's parameters).
pub fn eval_with_env(
    db: &mut Database,
    expr: &Expr,
    env: Vec<(VarName, Value)>,
) -> Result<Value, RuntimeError> {
    let mut frame = Frame { vars: env };
    eval(db, expr, &mut frame, 0)
}

fn eval(
    db: &mut Database,
    expr: &Expr,
    frame: &mut Frame,
    depth: usize,
) -> Result<Value, RuntimeError> {
    if depth > MAX_CALL_DEPTH {
        return Err(RuntimeError::CallDepthExceeded);
    }
    match expr {
        Expr::Const(l) => Ok(l.to_value()),
        Expr::Var(v) => frame
            .vars
            .iter()
            .rev()
            .find(|(n, _)| n == v)
            .map(|(_, val)| val.clone())
            .ok_or_else(|| RuntimeError::UnboundVariable { var: v.to_string() }),
        Expr::Basic(op, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(db, a, frame, depth)?);
            }
            eval_basic(*op, &vals)
        }
        Expr::Call(name, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(db, a, frame, depth)?);
            }
            let def = db.schema().function(name).cloned().ok_or_else(|| {
                RuntimeError::UnknownFunction {
                    name: name.to_string(),
                }
            })?;
            if vals.len() != def.arity() {
                return Err(RuntimeError::ArityMismatch {
                    target: name.to_string(),
                    expected: def.arity(),
                    actual: vals.len(),
                });
            }
            let mut callee = Frame {
                vars: def
                    .params
                    .iter()
                    .map(|(p, _)| p.clone())
                    .zip(vals)
                    .collect(),
            };
            eval(db, &def.body, &mut callee, depth + 1)
        }
        Expr::Read(attr, recv) => {
            let r = eval(db, recv, frame, depth)?;
            db.read_attr(&r, attr)
        }
        Expr::Write(attr, recv, val) => {
            let r = eval(db, recv, frame, depth)?;
            let v = eval(db, val, frame, depth)?;
            db.write_attr(&r, attr, v)
        }
        Expr::New(class, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(db, a, frame, depth)?);
            }
            db.create(class.clone(), vals).map(Value::Obj)
        }
        Expr::Let { bindings, body } => {
            let mark = frame.vars.len();
            for (name, value) in bindings {
                let v = eval(db, value, frame, depth)?;
                frame.vars.push((name.clone(), v));
            }
            let result = eval(db, body, frame, depth);
            frame.vars.truncate(mark);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_lang::{parse_expr, parse_schema};
    use oodb_model::FnRef;

    fn db() -> Database {
        let schema = parse_schema(
            r#"
            class Broker { name: string, salary: int, budget: int, profit: int }
            fn calcSalary(budget: int, profit: int): int { budget / 10 + profit / 2 }
            fn updateSalary(broker: Broker): null {
              w_salary(broker, calcSalary(r_budget(broker), r_profit(broker)))
            }
            "#,
        )
        .unwrap();
        Database::new(schema).unwrap()
    }

    #[test]
    fn arithmetic_and_let() {
        let mut db = db();
        let e = parse_expr("let x = 2, y = x * 3 in y + 1 end").unwrap();
        assert_eq!(db.eval_expr(&e).unwrap(), Value::Int(7));
    }

    #[test]
    fn nested_call_with_side_effects() {
        let mut db = db();
        let oid = db
            .create(
                "Broker",
                vec![
                    Value::str("John"),
                    Value::Int(1),
                    Value::Int(1000),
                    Value::Int(50),
                ],
            )
            .unwrap();
        let j = Value::Obj(oid);
        db.invoke(&FnRef::access("updateSalary"), vec![j.clone()])
            .unwrap();
        // New salary = 1000/10 + 50/2 = 125.
        assert_eq!(db.read_attr(&j, &"salary".into()).unwrap(), Value::Int(125));
    }

    #[test]
    fn write_then_read_order() {
        let mut db = db();
        let oid = db
            .create(
                "Broker",
                vec![Value::str("J"), Value::Int(0), Value::Int(0), Value::Int(0)],
            )
            .unwrap();
        // Let bindings evaluate in order: the read sees the earlier write.
        let e = parse_expr("let a = w_salary(b, 42), s = r_salary(b) in s end").unwrap();
        let v = eval_with_env(&mut db, &e, vec![(VarName::new("b"), Value::Obj(oid))]).unwrap();
        assert_eq!(v, Value::Int(42));
    }

    #[test]
    fn unbound_variable() {
        let mut db = db();
        let e = parse_expr("x + 1").unwrap();
        assert!(matches!(
            db.eval_expr(&e),
            Err(RuntimeError::UnboundVariable { .. })
        ));
    }

    #[test]
    fn new_allocates_into_extent() {
        let mut db = db();
        let e = parse_expr("new Broker(\"Jane\", 10, 20, 30)").unwrap();
        let v = db.eval_expr(&e).unwrap();
        assert!(v.as_obj().is_some());
        assert_eq!(db.extent(&"Broker".into()).len(), 1);
    }

    #[test]
    fn runtime_division_by_zero() {
        let mut db = db();
        let e = parse_expr("1 / 0").unwrap();
        assert_eq!(db.eval_expr(&e), Err(RuntimeError::DivisionByZero));
    }

    #[test]
    fn let_scope_restored_after_error() {
        let mut db = db();
        let e = parse_expr("let x = 1 in x / 0 end").unwrap();
        assert_eq!(db.eval_expr(&e), Err(RuntimeError::DivisionByZero));
        // Evaluator still usable.
        let e = parse_expr("2 + 2").unwrap();
        assert_eq!(db.eval_expr(&e).unwrap(), Value::Int(4));
    }
}
