//! A user session: parse → type-check → authorize → execute, with an
//! observation log.
//!
//! The log records everything the user *sees* — exactly the observations the
//! paper's inference systems reason about. `secflow-dynamic` replays the
//! same observations through I(E); the examples print them.

use crate::db::Database;
use crate::error::RuntimeError;
use crate::exec::{run_query, QueryOutput};
use oodb_lang::typeck::check_query;
use oodb_lang::{parse_query, ParseError, TypeError};
use oodb_model::UserName;
use secflow_obs::{MetricsSink, Phases};
use std::fmt;

/// Anything that can go wrong when a session runs query text.
#[derive(Clone, Debug, PartialEq)]
pub enum SessionError {
    /// The query text did not parse.
    Parse(ParseError),
    /// The query did not type-check.
    Type(TypeError),
    /// Execution failed (including authorization failures).
    Runtime(RuntimeError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Parse(e) => write!(f, "{e}"),
            SessionError::Type(e) => write!(f, "{e}"),
            SessionError::Runtime(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ParseError> for SessionError {
    fn from(e: ParseError) -> Self {
        SessionError::Parse(e)
    }
}

impl From<TypeError> for SessionError {
    fn from(e: TypeError) -> Self {
        SessionError::Type(e)
    }
}

impl From<RuntimeError> for SessionError {
    fn from(e: RuntimeError) -> Self {
        SessionError::Runtime(e)
    }
}

/// One logged interaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogEntry {
    /// The query text as issued.
    pub query: String,
    /// The rendered result set.
    pub result: String,
}

/// A live session of one user against a database.
#[derive(Debug)]
pub struct Session<'db> {
    db: &'db mut Database,
    user: UserName,
    log: Vec<LogEntry>,
    phases: Phases,
    queries_ok: u64,
    queries_err: u64,
}

impl<'db> Session<'db> {
    /// Open a session.
    pub fn open(db: &'db mut Database, user: impl Into<UserName>) -> Session<'db> {
        Session {
            db,
            user: user.into(),
            log: Vec::new(),
            phases: Phases::new(),
            queries_ok: 0,
            queries_err: 0,
        }
    }

    /// The session's user.
    pub fn user(&self) -> &UserName {
        &self.user
    }

    /// Parse, type-check, authorize and run a query; the observation is
    /// appended to the log.
    pub fn query(&mut self, text: &str) -> Result<QueryOutput, SessionError> {
        let result = (|| {
            let q = self.phases.time("session.parse", || parse_query(text))?;
            self.phases
                .time("session.typecheck", || check_query(self.db.schema(), &q))?;
            let out = self.phases.time("session.execute", || {
                run_query(self.db, Some(&self.user), &q)
            })?;
            Ok(out)
        })();
        match &result {
            Ok(out) => {
                self.queries_ok += 1;
                self.log.push(LogEntry {
                    query: text.to_owned(),
                    result: out.render(),
                });
            }
            Err(_) => self.queries_err += 1,
        }
        result
    }

    /// Everything this user has observed so far.
    pub fn log(&self) -> &[LogEntry] {
        &self.log
    }

    /// Accumulated wall-clock per query phase (parse / typecheck / execute)
    /// across every query this session ran.
    pub fn phases(&self) -> &Phases {
        &self.phases
    }

    /// Queries that completed successfully.
    pub fn queries_ok(&self) -> u64 {
        self.queries_ok
    }

    /// Queries rejected at any stage (parse, type, authorization, runtime).
    pub fn queries_err(&self) -> u64 {
        self.queries_err
    }

    /// Report session counters and phase timings into a sink, together with
    /// the underlying database's execution counters.
    pub fn record_to(&self, sink: &mut dyn MetricsSink) {
        sink.counter("session.queries_ok", self.queries_ok);
        sink.counter("session.queries_err", self.queries_err);
        self.phases.record_to(sink);
        self.db.stats().record_to(sink);
    }

    /// Access the underlying database (e.g. for administrative seeding
    /// between queries in tests).
    pub fn database(&mut self) -> &mut Database {
        self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_lang::parse_schema;
    use oodb_model::Value;

    fn db() -> Database {
        let schema = parse_schema(
            r#"
            class Broker { name: string, salary: int, budget: int, profit: int }
            fn checkBudget(broker: Broker): bool {
              r_budget(broker) >= 10 * r_salary(broker)
            }
            user clerk { checkBudget, w_budget, r_name }
            "#,
        )
        .unwrap();
        let mut db = Database::new(schema).unwrap();
        db.create(
            "Broker",
            vec![
                Value::str("John"),
                Value::Int(150),
                Value::Int(1000),
                Value::Int(0),
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn session_logs_observations() {
        let mut db = db();
        let mut s = Session::open(&mut db, "clerk");
        s.query("select checkBudget(b) from b in Broker").unwrap();
        s.query("select w_budget(b, 1500), checkBudget(b) from b in Broker")
            .unwrap();
        assert_eq!(s.log().len(), 2);
        assert_eq!(s.log()[0].result, "{(false)}");
        assert_eq!(s.log()[1].result, "{(null, true)}");
    }

    #[test]
    fn session_propagates_all_error_kinds() {
        let mut db = db();
        let mut s = Session::open(&mut db, "clerk");
        assert!(matches!(
            s.query("select from nowhere"),
            Err(SessionError::Parse(_))
        ));
        assert!(matches!(
            s.query("select r_name(b) from b in Nobody"),
            Err(SessionError::Type(_))
        ));
        assert!(matches!(
            s.query("select r_salary(b) from b in Broker"),
            Err(SessionError::Runtime(RuntimeError::NotAuthorized { .. }))
        ));
        // Failed queries are not logged.
        assert!(s.log().is_empty());
    }

    #[test]
    fn session_metrics_count_queries_and_phases() {
        let mut db = db();
        let mut s = Session::open(&mut db, "clerk");
        s.query("select checkBudget(b) from b in Broker").unwrap();
        s.query("select r_salary(b) from b in Broker").unwrap_err();
        assert_eq!(s.queries_ok(), 1);
        assert_eq!(s.queries_err(), 1);
        for phase in ["session.parse", "session.typecheck", "session.execute"] {
            assert!(s.phases().get(phase).is_some(), "missing {phase}");
        }
        let mut rec = secflow_obs::Recorder::new();
        s.record_to(&mut rec);
        let r = rec.into_report();
        assert_eq!(r.counter("session.queries_ok"), Some(1));
        assert_eq!(r.counter("engine.live_objects"), Some(1));
        // checkBudget reads budget and salary.
        assert!(r.counter("engine.attr_reads").unwrap() >= 2);
        assert!(r.span("session.execute").is_some());
    }
}
