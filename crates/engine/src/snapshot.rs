//! Text snapshots of database state.
//!
//! The paper's databases are persistent; this module gives the in-memory
//! engine a durable form: a line-oriented, human-diffable dump of the heap
//! that reloads against the same schema. Object references are written as
//! `@<slot>` — stable because snapshots list objects in slot order and
//! loading re-creates them in the same order.
//!
//! ```text
//! object 0 Broker { name = "John", salary = 150, budget = 1000, profit = 50 }
//! object 1 Person { name = "Ann", child = {@0, @2}, boss = null }
//! ```

use crate::db::Database;
use crate::error::RuntimeError;
use oodb_lang::Schema;
use oodb_model::{Oid, Value};
use std::fmt;

/// Errors while reading a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SnapshotError {}

/// Serialise the whole heap.
pub fn save(db: &Database) -> String {
    let mut out = String::new();
    // Objects in slot order: collect every class extent and sort by OID.
    let mut oids: Vec<Oid> = db
        .schema()
        .classes
        .iter()
        .flat_map(|c| db.extent(&c.name).to_vec())
        .collect();
    oids.sort();
    for oid in oids {
        let class = db.class_of(oid).expect("extent oids are live").clone();
        let def = db.schema().classes.get(&class).expect("schema class");
        out.push_str(&format!("object {} {} {{ ", oid.raw(), class));
        for (i, attr) in def.attrs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let v = db
                .read_attr(&Value::Obj(oid), &attr.name)
                .expect("declared attribute");
            out.push_str(&format!("{} = {}", attr.name, render(&v)));
        }
        out.push_str(" }\n");
    }
    out
}

fn render(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Str(s) => format!("{s:?}"),
        Value::Null => "null".to_owned(),
        Value::Obj(o) => format!("@{}", o.raw()),
        Value::Set(items) => {
            let inner: Vec<String> = items.iter().map(render).collect();
            format!("{{{}}}", inner.join(", "))
        }
    }
}

/// Load a snapshot into a fresh database over `schema`. Slot numbers in the
/// snapshot must be dense and ascending from 0 (as produced by [`save`]).
pub fn load(schema: Schema, text: &str) -> Result<Database, SnapshotError> {
    let mut db = Database::new_unchecked(schema);
    // Two passes: create all objects with placeholder references first so
    // forward `@n` references resolve, then patch attributes.
    #[allow(clippy::type_complexity)]
    let mut parsed: Vec<(String, Vec<(String, Raw)>)> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let rest = line.strip_prefix("object ").ok_or_else(|| SnapshotError {
            line: lineno,
            message: "expected `object <slot> <Class> { … }`".to_owned(),
        })?;
        let (slot, rest) = rest.split_once(' ').ok_or_else(|| SnapshotError {
            line: lineno,
            message: "missing class name".to_owned(),
        })?;
        let slot: u64 = slot.parse().map_err(|_| SnapshotError {
            line: lineno,
            message: format!("bad slot `{slot}`"),
        })?;
        if slot as usize != parsed.len() {
            return Err(SnapshotError {
                line: lineno,
                message: format!(
                    "slots must be dense and ascending; expected {}",
                    parsed.len()
                ),
            });
        }
        let (class, body) = rest.split_once('{').ok_or_else(|| SnapshotError {
            line: lineno,
            message: "missing `{`".to_owned(),
        })?;
        let body = body.trim().strip_suffix('}').ok_or_else(|| SnapshotError {
            line: lineno,
            message: "missing closing `}`".to_owned(),
        })?;
        let mut fields = Vec::new();
        let mut p = RawParser {
            src: body,
            pos: 0,
            line: lineno,
        };
        p.skip_ws();
        while !p.done() {
            let name = p.ident()?;
            p.expect('=')?;
            let value = p.value()?;
            fields.push((name, value));
            p.skip_ws();
            if p.peek() == Some(',') {
                p.bump();
                p.skip_ws();
            }
        }
        parsed.push((class.trim().to_owned(), fields));
    }

    // Pass 1: create with nulls/empties.
    for (class, fields) in &parsed {
        let def = db
            .schema()
            .classes
            .get_str(class)
            .ok_or_else(|| SnapshotError {
                line: 0,
                message: format!("unknown class `{class}`"),
            })?
            .clone();
        if def.attrs.len() != fields.len() {
            return Err(SnapshotError {
                line: 0,
                message: format!(
                    "class `{class}` has {} attributes, snapshot lists {}",
                    def.attrs.len(),
                    fields.len()
                ),
            });
        }
        let placeholders: Vec<Value> = def
            .attrs
            .iter()
            .map(|a| match &a.ty {
                oodb_model::Type::Set(_) => Value::set(vec![]),
                _ => Value::Null,
            })
            .collect();
        db.create(class.as_str(), placeholders)
            .map_err(|e| SnapshotError {
                line: 0,
                message: e.to_string(),
            })?;
    }
    // Pass 2: patch values.
    for (slot, (_, fields)) in parsed.iter().enumerate() {
        let recv = Value::Obj(Oid::from_raw(slot as u64));
        for (name, raw) in fields {
            let v = raw
                .to_value(parsed.len())
                .map_err(|message| SnapshotError { line: 0, message })?;
            db.write_attr(&recv, &name.as_str().into(), v)
                .map_err(|e: RuntimeError| SnapshotError {
                    line: 0,
                    message: e.to_string(),
                })?;
        }
    }
    Ok(db)
}

/// A parsed-but-unresolved snapshot value.
#[derive(Clone, Debug)]
enum Raw {
    Int(i64),
    Bool(bool),
    Str(String),
    Null,
    Ref(u64),
    Set(Vec<Raw>),
}

impl Raw {
    fn to_value(&self, objects: usize) -> Result<Value, String> {
        Ok(match self {
            Raw::Int(i) => Value::Int(*i),
            Raw::Bool(b) => Value::Bool(*b),
            Raw::Str(s) => Value::Str(s.clone()),
            Raw::Null => Value::Null,
            Raw::Ref(slot) => {
                if *slot as usize >= objects {
                    return Err(format!("dangling reference @{slot}"));
                }
                Value::Obj(Oid::from_raw(*slot))
            }
            Raw::Set(items) => Value::set(
                items
                    .iter()
                    .map(|r| r.to_value(objects))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
        })
    }
}

struct RawParser<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
}

impl RawParser<'_> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, SnapshotError> {
        Err(SnapshotError {
            line: self.line,
            message: message.into(),
        })
    }

    fn rest(&self) -> &str {
        &self.src[self.pos..]
    }

    fn done(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) {
        if let Some(c) = self.peek() {
            self.pos += c.len_utf8();
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn ident(&mut self) -> Result<String, SnapshotError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '_') {
            self.bump();
        }
        if start == self.pos {
            return self.err("expected attribute name");
        }
        Ok(self.src[start..self.pos].to_owned())
    }

    fn expect(&mut self, c: char) -> Result<(), SnapshotError> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected `{c}`"))
        }
    }

    fn value(&mut self) -> Result<Raw, SnapshotError> {
        self.skip_ws();
        match self.peek() {
            Some('@') => {
                self.bump();
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
                self.src[start..self.pos]
                    .parse()
                    .map(Raw::Ref)
                    .or_else(|_| self.err("bad object reference"))
            }
            Some('"') => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.peek() {
                        None => return self.err("unterminated string"),
                        Some('"') => {
                            self.bump();
                            break;
                        }
                        Some('\\') => {
                            self.bump();
                            match self.peek() {
                                Some('"') => s.push('"'),
                                Some('\\') => s.push('\\'),
                                Some('n') => s.push('\n'),
                                Some('t') => s.push('\t'),
                                other => return self.err(format!("bad escape {other:?}")),
                            }
                            self.bump();
                        }
                        Some(c) => {
                            s.push(c);
                            self.bump();
                        }
                    }
                }
                Ok(Raw::Str(s))
            }
            Some('{') => {
                self.bump();
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some('}') {
                    self.bump();
                    return Ok(Raw::Set(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(',') => {
                            self.bump();
                        }
                        Some('}') => {
                            self.bump();
                            return Ok(Raw::Set(items));
                        }
                        _ => return self.err("expected `,` or `}` in set"),
                    }
                }
            }
            Some(c) if c.is_ascii_digit() || c == '-' => {
                let start = self.pos;
                self.bump();
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
                self.src[start..self.pos]
                    .parse()
                    .map(Raw::Int)
                    .or_else(|_| self.err("bad integer"))
            }
            _ => {
                if self.rest().starts_with("true") {
                    self.pos += 4;
                    Ok(Raw::Bool(true))
                } else if self.rest().starts_with("false") {
                    self.pos += 5;
                    Ok(Raw::Bool(false))
                } else if self.rest().starts_with("null") {
                    self.pos += 4;
                    Ok(Raw::Null)
                } else {
                    self.err("expected a value")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_lang::parse_schema;

    fn schema() -> Schema {
        parse_schema(
            r#"
            class Person { name: string, age: int, vip: bool, child: {Person}, boss: Person }
            "#,
        )
        .unwrap()
    }

    fn sample_db() -> Database {
        let mut db = Database::new(schema()).unwrap();
        let a = db
            .create(
                "Person",
                vec![
                    Value::str("Ann \"the\" boss"),
                    Value::Int(51),
                    Value::Bool(true),
                    Value::set(vec![]),
                    Value::Null,
                ],
            )
            .unwrap();
        let b = db
            .create(
                "Person",
                vec![
                    Value::str("Bob"),
                    Value::Int(-7),
                    Value::Bool(false),
                    Value::set(vec![]),
                    Value::Obj(a),
                ],
            )
            .unwrap();
        // Ann's children: Bob and herself (cycles are fine).
        db.write_attr(
            &Value::Obj(a),
            &"child".into(),
            Value::set(vec![Value::Obj(a), Value::Obj(b)]),
        )
        .unwrap();
        db
    }

    #[test]
    fn round_trip_preserves_everything() {
        let db = sample_db();
        let text = save(&db);
        let reloaded = load(schema(), &text).unwrap();
        assert_eq!(reloaded.object_count(), db.object_count());
        for slot in 0..db.object_count() as u64 {
            let o = Value::Obj(Oid::from_raw(slot));
            for attr in ["name", "age", "vip", "child", "boss"] {
                assert_eq!(
                    db.read_attr(&o, &attr.into()).unwrap(),
                    reloaded.read_attr(&o, &attr.into()).unwrap(),
                    "slot {slot}, attr {attr}"
                );
            }
        }
        // And saving again is byte-identical (canonical form).
        assert_eq!(save(&reloaded), text);
    }

    #[test]
    fn snapshot_is_human_readable() {
        let db = sample_db();
        let text = save(&db);
        assert!(text.contains("object 0 Person {"));
        assert!(text.contains("age = 51"));
        assert!(text.contains("child = {@0, @1}"));
        assert!(text.contains("boss = null"));
        assert!(text.contains("boss = @0"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a comment\n\nobject 0 Person { name = \"x\", age = 1, vip = false, child = {}, boss = null }\n";
        let db = load(schema(), text).unwrap();
        assert_eq!(db.object_count(), 1);
    }

    #[test]
    fn errors_are_located() {
        // Bad slot ordering.
        let text =
            "object 1 Person { name = \"x\", age = 1, vip = false, child = {}, boss = null }";
        let err = load(schema(), text).unwrap_err();
        assert!(err.message.contains("dense"));

        // Unknown class.
        let err = load(schema(), "object 0 Ghost { }").unwrap_err();
        assert!(err.message.contains("unknown class"));

        // Dangling reference.
        let text = "object 0 Person { name = \"x\", age = 1, vip = false, child = {}, boss = @9 }";
        let err = load(schema(), text).unwrap_err();
        assert!(err.message.contains("dangling"));

        // Wrong field count.
        let err = load(schema(), "object 0 Person { name = \"x\" }").unwrap_err();
        assert!(err.message.contains("attributes"));
    }

    #[test]
    fn empty_snapshot_is_an_empty_db() {
        let db = load(schema(), "").unwrap();
        assert_eq!(db.object_count(), 0);
        assert_eq!(save(&db), "");
    }
}
