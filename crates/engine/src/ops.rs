//! Semantics of the basic functions `fb`.
//!
//! This single definition is shared by the engine's evaluator and by
//! `secflow-dynamic`'s execution-instance machinery, so the concrete
//! attacker and the database agree exactly on primitive behaviour.
//!
//! Integers are checked `i64`: the paper's integers are unbounded, so wrap
//! would silently change semantics — overflow is surfaced as
//! [`RuntimeError::Overflow`] instead (unreachable for the small domains the
//! experiments use).

use crate::error::RuntimeError;
use oodb_lang::BasicOp;
use oodb_model::Value;

/// Evaluate a basic function on argument values.
pub fn eval_basic(op: BasicOp, args: &[Value]) -> Result<Value, RuntimeError> {
    if args.len() != op.arity() {
        return Err(RuntimeError::ArityMismatch {
            target: op.symbol().to_owned(),
            expected: op.arity(),
            actual: args.len(),
        });
    }
    let int = |v: &Value| {
        v.as_int()
            .ok_or_else(|| RuntimeError::mismatch("an integer", v))
    };
    let boolean = |v: &Value| {
        v.as_bool()
            .ok_or_else(|| RuntimeError::mismatch("a boolean", v))
    };

    Ok(match op {
        BasicOp::Add => Value::Int(
            int(&args[0])?
                .checked_add(int(&args[1])?)
                .ok_or(RuntimeError::Overflow)?,
        ),
        BasicOp::Sub => Value::Int(
            int(&args[0])?
                .checked_sub(int(&args[1])?)
                .ok_or(RuntimeError::Overflow)?,
        ),
        BasicOp::Mul => Value::Int(
            int(&args[0])?
                .checked_mul(int(&args[1])?)
                .ok_or(RuntimeError::Overflow)?,
        ),
        BasicOp::Div => {
            let d = int(&args[1])?;
            if d == 0 {
                return Err(RuntimeError::DivisionByZero);
            }
            Value::Int(
                int(&args[0])?
                    .checked_div(d)
                    .ok_or(RuntimeError::Overflow)?,
            )
        }
        BasicOp::Mod => {
            let d = int(&args[1])?;
            if d == 0 {
                return Err(RuntimeError::DivisionByZero);
            }
            Value::Int(
                int(&args[0])?
                    .checked_rem(d)
                    .ok_or(RuntimeError::Overflow)?,
            )
        }
        BasicOp::Neg => Value::Int(int(&args[0])?.checked_neg().ok_or(RuntimeError::Overflow)?),
        BasicOp::Ge => Value::Bool(int(&args[0])? >= int(&args[1])?),
        BasicOp::Gt => Value::Bool(int(&args[0])? > int(&args[1])?),
        BasicOp::Le => Value::Bool(int(&args[0])? <= int(&args[1])?),
        BasicOp::Lt => Value::Bool(int(&args[0])? < int(&args[1])?),
        BasicOp::EqOp => Value::Bool(args[0] == args[1]),
        BasicOp::NeOp => Value::Bool(args[0] != args[1]),
        BasicOp::And => Value::Bool(boolean(&args[0])? && boolean(&args[1])?),
        BasicOp::Or => Value::Bool(boolean(&args[0])? || boolean(&args[1])?),
        BasicOp::Not => Value::Bool(!boolean(&args[0])?),
        BasicOp::Concat => {
            let a = args[0]
                .as_str()
                .ok_or_else(|| RuntimeError::mismatch("a string", &args[0]))?;
            let b = args[1]
                .as_str()
                .ok_or_else(|| RuntimeError::mismatch("a string", &args[1]))?;
            Value::Str(format!("{a}{b}"))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(x: i64) -> Value {
        Value::Int(x)
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval_basic(BasicOp::Add, &[i(2), i(3)]).unwrap(), i(5));
        assert_eq!(eval_basic(BasicOp::Sub, &[i(2), i(3)]).unwrap(), i(-1));
        assert_eq!(eval_basic(BasicOp::Mul, &[i(4), i(3)]).unwrap(), i(12));
        assert_eq!(eval_basic(BasicOp::Div, &[i(7), i(2)]).unwrap(), i(3));
        assert_eq!(eval_basic(BasicOp::Mod, &[i(7), i(2)]).unwrap(), i(1));
        assert_eq!(eval_basic(BasicOp::Neg, &[i(7)]).unwrap(), i(-7));
    }

    #[test]
    fn division_by_zero() {
        assert_eq!(
            eval_basic(BasicOp::Div, &[i(1), i(0)]),
            Err(RuntimeError::DivisionByZero)
        );
        assert_eq!(
            eval_basic(BasicOp::Mod, &[i(1), i(0)]),
            Err(RuntimeError::DivisionByZero)
        );
    }

    #[test]
    fn overflow_is_reported() {
        assert_eq!(
            eval_basic(BasicOp::Add, &[i(i64::MAX), i(1)]),
            Err(RuntimeError::Overflow)
        );
        assert_eq!(
            eval_basic(BasicOp::Neg, &[i(i64::MIN)]),
            Err(RuntimeError::Overflow)
        );
        assert_eq!(
            eval_basic(BasicOp::Div, &[i(i64::MIN), i(-1)]),
            Err(RuntimeError::Overflow)
        );
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            eval_basic(BasicOp::Ge, &[i(10), i(10)]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_basic(BasicOp::Lt, &[i(10), i(10)]).unwrap(),
            Value::Bool(false)
        );
        // The paper's checkBudget comparison.
        assert_eq!(
            eval_basic(BasicOp::Ge, &[i(1000), i(10 * 150)]).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn equality_is_polymorphic_over_values() {
        assert_eq!(
            eval_basic(BasicOp::EqOp, &[Value::str("a"), Value::str("a")]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_basic(BasicOp::NeOp, &[Value::Bool(true), Value::Bool(false)]).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn boolean_ops_and_concat() {
        assert_eq!(
            eval_basic(BasicOp::And, &[Value::Bool(true), Value::Bool(false)]).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval_basic(BasicOp::Not, &[Value::Bool(false)]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_basic(BasicOp::Concat, &[Value::str("ab"), Value::str("cd")]).unwrap(),
            Value::str("abcd")
        );
    }

    #[test]
    fn type_errors_are_defensive() {
        assert!(matches!(
            eval_basic(BasicOp::Add, &[Value::Bool(true), i(1)]),
            Err(RuntimeError::TypeMismatch { .. })
        ));
        assert!(matches!(
            eval_basic(BasicOp::Add, &[i(1)]),
            Err(RuntimeError::ArityMismatch { .. })
        ));
    }
}
