//! Runtime errors.

use oodb_model::{AttrName, ClassName, FnRef, Oid, UserName, Value};
use std::fmt;

/// An error raised while evaluating an expression or query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuntimeError {
    /// A user invoked a function outside their capability list.
    NotAuthorized {
        /// The user.
        user: UserName,
        /// The denied function.
        target: FnRef,
    },
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// Arithmetic overflow (the engine uses checked `i64` arithmetic — the
    /// paper's integers are unbounded, so overflow is an error rather than a
    /// silent wrap).
    Overflow,
    /// The receiver of an attribute operation was `null` or not an object.
    BadReceiver {
        /// The offending value (rendered).
        value: String,
    },
    /// The receiving object's class does not declare the attribute.
    NoSuchAttribute {
        /// The object's class.
        class: ClassName,
        /// The missing attribute.
        attr: AttrName,
    },
    /// A dangling object reference (only possible with hand-built OIDs).
    DanglingOid {
        /// The bad OID.
        oid: Oid,
    },
    /// An unknown access function was called.
    UnknownFunction {
        /// Missing name.
        name: String,
    },
    /// An unknown class was referenced.
    UnknownClass {
        /// Missing class.
        class: ClassName,
    },
    /// A variable had no binding at runtime (indicates a type-check bypass).
    UnboundVariable {
        /// Variable name.
        var: String,
    },
    /// An operation got a value of the wrong shape (indicates a type-check
    /// bypass; the evaluator is defensive).
    TypeMismatch {
        /// What was expected.
        expected: &'static str,
        /// What arrived (rendered).
        actual: String,
    },
    /// Wrong number of arguments at runtime.
    ArityMismatch {
        /// What was invoked.
        target: String,
        /// Expected count.
        expected: usize,
        /// Actual count.
        actual: usize,
    },
    /// The call stack exceeded its bound. Cannot occur for schemas accepted
    /// by the type checker (recursion-free), but the evaluator guards anyway.
    CallDepthExceeded,
    /// A from-clause source evaluated to a non-set value.
    NotASet {
        /// What arrived (rendered).
        actual: String,
    },
}

impl RuntimeError {
    /// Helper for [`RuntimeError::TypeMismatch`].
    pub fn mismatch(expected: &'static str, actual: &Value) -> RuntimeError {
        RuntimeError::TypeMismatch {
            expected,
            actual: actual.to_string(),
        }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NotAuthorized { user, target } => {
                write!(f, "user `{user}` is not authorized to invoke `{target}`")
            }
            RuntimeError::DivisionByZero => write!(f, "division by zero"),
            RuntimeError::Overflow => write!(f, "integer overflow"),
            RuntimeError::BadReceiver { value } => {
                write!(f, "attribute operation on non-object value {value}")
            }
            RuntimeError::NoSuchAttribute { class, attr } => {
                write!(f, "class `{class}` has no attribute `{attr}`")
            }
            RuntimeError::DanglingOid { oid } => write!(f, "dangling object reference {oid:?}"),
            RuntimeError::UnknownFunction { name } => write!(f, "unknown function `{name}`"),
            RuntimeError::UnknownClass { class } => write!(f, "unknown class `{class}`"),
            RuntimeError::UnboundVariable { var } => write!(f, "unbound variable `{var}`"),
            RuntimeError::TypeMismatch { expected, actual } => {
                write!(f, "expected {expected}, found {actual}")
            }
            RuntimeError::ArityMismatch {
                target,
                expected,
                actual,
            } => write!(f, "`{target}` expects {expected} argument(s), got {actual}"),
            RuntimeError::CallDepthExceeded => write!(f, "call depth exceeded"),
            RuntimeError::NotASet { actual } => {
                write!(f, "from-clause source is not a set: {actual}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = RuntimeError::NotAuthorized {
            user: UserName::new("clerk"),
            target: FnRef::read("salary"),
        };
        assert_eq!(
            e.to_string(),
            "user `clerk` is not authorized to invoke `r_salary`"
        );
        assert_eq!(
            RuntimeError::mismatch("an integer", &Value::Bool(true)).to_string(),
            "expected an integer, found true"
        );
    }
}
