//! [`Database`]: a checked schema plus a heap, with the attribute- and
//! function-level operations everything else builds on.

use crate::error::RuntimeError;
use crate::eval;
use crate::heap::Heap;
use crate::stats::{bump, EngineStats, OpCounters};
use oodb_lang::typeck::{check_schema, fn_ref_signature};
use oodb_lang::{Expr, Schema};
use oodb_model::{AttrName, ClassName, FnRef, Oid, UserName, Value};

/// A database instance: schema + object heap.
///
/// All mutation goes through methods here so the heap's extents and the
/// schema's attribute indices stay consistent.
#[derive(Clone, Debug)]
pub struct Database {
    schema: Schema,
    heap: Heap,
    counters: OpCounters,
}

impl Database {
    /// Create a database over a schema, running the full type checker first.
    pub fn new(schema: Schema) -> Result<Database, oodb_lang::TypeError> {
        check_schema(&schema)?;
        Ok(Database {
            schema,
            heap: Heap::new(),
            counters: OpCounters::default(),
        })
    }

    /// Create without re-checking (for callers that already validated, e.g.
    /// the workload generators which construct thousands of schemas).
    pub fn new_unchecked(schema: Schema) -> Database {
        Database {
            schema,
            heap: Heap::new(),
            counters: OpCounters::default(),
        }
    }

    /// A snapshot of the execution counters (reads, writes, allocations,
    /// invocations) plus the current live-object count. Counters survive
    /// `clone` — a forked database keeps counting from its parent's totals.
    pub fn stats(&self) -> EngineStats {
        self.counters.snapshot(self.heap.len() as u64)
    }

    /// Zero the execution counters (the live-object count is not a counter
    /// and is unaffected).
    pub fn reset_stats(&self) {
        self.counters.reset();
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The heap (read access; used by tests and the dynamic analysis).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Number of live objects.
    pub fn object_count(&self) -> usize {
        self.heap.len()
    }

    /// Create an object with positional attribute values.
    pub fn create(
        &mut self,
        class: impl Into<ClassName>,
        attrs: Vec<Value>,
    ) -> Result<Oid, RuntimeError> {
        let class = class.into();
        let def = self
            .schema
            .classes
            .get(&class)
            .ok_or_else(|| RuntimeError::UnknownClass {
                class: class.clone(),
            })?;
        if attrs.len() != def.attrs.len() {
            return Err(RuntimeError::ArityMismatch {
                target: format!("new {class}"),
                expected: def.attrs.len(),
                actual: attrs.len(),
            });
        }
        bump(&self.counters.allocs);
        Ok(self.heap.alloc(class, attrs))
    }

    /// The extent of a class in creation order.
    pub fn extent(&self, class: &ClassName) -> &[Oid] {
        self.heap.extent(class)
    }

    /// The class of an object.
    pub fn class_of(&self, oid: Oid) -> Result<&ClassName, RuntimeError> {
        self.heap.class_of(oid)
    }

    fn attr_index(&self, oid: Oid, attr: &AttrName) -> Result<usize, RuntimeError> {
        let class = self.heap.class_of(oid)?.clone();
        let def = self
            .schema
            .classes
            .get(&class)
            .ok_or_else(|| RuntimeError::UnknownClass {
                class: class.clone(),
            })?;
        def.attr_index(attr).ok_or(RuntimeError::NoSuchAttribute {
            class,
            attr: attr.clone(),
        })
    }

    /// `r_att(recv)` on a value receiver.
    pub fn read_attr(&self, recv: &Value, attr: &AttrName) -> Result<Value, RuntimeError> {
        let oid = recv.as_obj().ok_or_else(|| RuntimeError::BadReceiver {
            value: recv.to_string(),
        })?;
        let idx = self.attr_index(oid, attr)?;
        bump(&self.counters.reads);
        Ok(self.heap.read(oid, idx)?.clone())
    }

    /// `w_att(recv, value)`; returns `null` like the paper's `w_att`.
    pub fn write_attr(
        &mut self,
        recv: &Value,
        attr: &AttrName,
        value: Value,
    ) -> Result<Value, RuntimeError> {
        let oid = recv.as_obj().ok_or_else(|| RuntimeError::BadReceiver {
            value: recv.to_string(),
        })?;
        let idx = self.attr_index(oid, attr)?;
        self.heap.write(oid, idx, value)?;
        bump(&self.counters.writes);
        Ok(Value::Null)
    }

    /// Invoke anything invocable with concrete argument values, *without*
    /// capability checking (the trusted path used inside function bodies).
    pub fn invoke(&mut self, target: &FnRef, args: Vec<Value>) -> Result<Value, RuntimeError> {
        bump(&self.counters.invocations);
        match target {
            FnRef::Access(name) => {
                let def = self.schema.function(name).cloned().ok_or_else(|| {
                    RuntimeError::UnknownFunction {
                        name: name.to_string(),
                    }
                })?;
                if args.len() != def.arity() {
                    return Err(RuntimeError::ArityMismatch {
                        target: name.to_string(),
                        expected: def.arity(),
                        actual: args.len(),
                    });
                }
                let env: Vec<(oodb_model::VarName, Value)> = def
                    .params
                    .iter()
                    .map(|(p, _)| p.clone())
                    .zip(args)
                    .collect();
                eval::eval_with_env(self, &def.body, env)
            }
            FnRef::Read(attr) => {
                if args.len() != 1 {
                    return Err(RuntimeError::ArityMismatch {
                        target: target.to_string(),
                        expected: 1,
                        actual: args.len(),
                    });
                }
                self.read_attr(&args[0], attr)
            }
            FnRef::Write(attr) => {
                if args.len() != 2 {
                    return Err(RuntimeError::ArityMismatch {
                        target: target.to_string(),
                        expected: 2,
                        actual: args.len(),
                    });
                }
                let mut it = args.into_iter();
                let recv = it.next().expect("len checked");
                let val = it.next().expect("len checked");
                self.write_attr(&recv, attr, val)
            }
            FnRef::New(class) => self.create(class.clone(), args).map(Value::Obj),
        }
    }

    /// Invoke on behalf of a user: checks the capability list first. This is
    /// the paper's access-control boundary — access functions run with full
    /// rights once entered.
    pub fn invoke_as(
        &mut self,
        user: &UserName,
        target: &FnRef,
        args: Vec<Value>,
    ) -> Result<Value, RuntimeError> {
        let caps = self
            .schema
            .user(user)
            .ok_or_else(|| RuntimeError::UnknownFunction {
                name: format!("user {user}"),
            })?;
        if !caps.allows(target) {
            return Err(RuntimeError::NotAuthorized {
                user: user.clone(),
                target: target.clone(),
            });
        }
        self.invoke(target, args)
    }

    /// Evaluate a bare expression in an empty environment (administrative /
    /// test convenience).
    pub fn eval_expr(&mut self, expr: &Expr) -> Result<Value, RuntimeError> {
        eval::eval_with_env(self, expr, Vec::new())
    }

    /// Signature of an invocable, delegated to the type checker.
    pub fn signature(
        &self,
        target: &FnRef,
        receiver: Option<&ClassName>,
    ) -> Result<(Vec<oodb_model::Type>, oodb_model::Type), oodb_lang::TypeError> {
        fn_ref_signature(&self.schema, target, receiver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_lang::parse_schema;

    fn db() -> Database {
        let schema = parse_schema(
            r#"
            class Broker { name: string, salary: int, budget: int, profit: int }
            fn checkBudget(broker: Broker): bool {
              r_budget(broker) >= 10 * r_salary(broker)
            }
            user clerk { checkBudget, w_budget }
            "#,
        )
        .unwrap();
        Database::new(schema).unwrap()
    }

    fn john(db: &mut Database) -> Value {
        Value::Obj(
            db.create(
                "Broker",
                vec![
                    Value::str("John"),
                    Value::Int(150),
                    Value::Int(1000),
                    Value::Int(50),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn create_and_attrs() {
        let mut db = db();
        let j = john(&mut db);
        assert_eq!(db.read_attr(&j, &"salary".into()).unwrap(), Value::Int(150));
        assert_eq!(
            db.write_attr(&j, &"salary".into(), Value::Int(200))
                .unwrap(),
            Value::Null
        );
        assert_eq!(db.read_attr(&j, &"salary".into()).unwrap(), Value::Int(200));
        assert_eq!(db.extent(&"Broker".into()).len(), 1);
    }

    #[test]
    fn invoke_access_function() {
        let mut db = db();
        let j = john(&mut db);
        // budget 1000 < 10*150: within regulation.
        let v = db
            .invoke(&FnRef::access("checkBudget"), vec![j.clone()])
            .unwrap();
        assert_eq!(v, Value::Bool(false));
        db.write_attr(&j, &"budget".into(), Value::Int(2000))
            .unwrap();
        let v = db.invoke(&FnRef::access("checkBudget"), vec![j]).unwrap();
        assert_eq!(v, Value::Bool(true));
    }

    #[test]
    fn capability_enforcement() {
        let mut db = db();
        let j = john(&mut db);
        let clerk = UserName::new("clerk");
        // Granted: checkBudget, w_budget.
        db.invoke_as(&clerk, &FnRef::access("checkBudget"), vec![j.clone()])
            .unwrap();
        db.invoke_as(
            &clerk,
            &FnRef::write("budget"),
            vec![j.clone(), Value::Int(5)],
        )
        .unwrap();
        // Denied: direct read of salary — the paper's whole point.
        let err = db
            .invoke_as(&clerk, &FnRef::read("salary"), vec![j])
            .unwrap_err();
        assert!(matches!(err, RuntimeError::NotAuthorized { .. }));
    }

    #[test]
    fn create_arity_checked() {
        let mut db = db();
        assert!(matches!(
            db.create("Broker", vec![Value::str("x")]),
            Err(RuntimeError::ArityMismatch { .. })
        ));
        assert!(matches!(
            db.create("Nope", vec![]),
            Err(RuntimeError::UnknownClass { .. })
        ));
    }

    #[test]
    fn bad_receivers() {
        let mut db = db();
        assert!(matches!(
            db.read_attr(&Value::Null, &"salary".into()),
            Err(RuntimeError::BadReceiver { .. })
        ));
        let j = john(&mut db);
        assert!(matches!(
            db.read_attr(&j, &"missing".into()),
            Err(RuntimeError::NoSuchAttribute { .. })
        ));
    }

    #[test]
    fn stats_count_primitive_operations() {
        let mut db = db();
        let j = john(&mut db);
        assert_eq!(db.stats().allocs, 1);
        assert_eq!(db.stats().live_objects, 1);
        db.read_attr(&j, &"salary".into()).unwrap();
        db.write_attr(&j, &"budget".into(), Value::Int(1)).unwrap();
        // checkBudget reads budget and salary through one invocation.
        db.invoke(&FnRef::access("checkBudget"), vec![j.clone()])
            .unwrap();
        let s = db.stats();
        assert_eq!(s.attr_reads, 3);
        assert_eq!(s.attr_writes, 1);
        assert_eq!(s.invocations, 1);
        // Failed operations don't count as reads.
        let _ = db.read_attr(&j, &"missing".into());
        assert_eq!(db.stats().attr_reads, 3);
        db.reset_stats();
        let s = db.stats();
        assert_eq!((s.attr_reads, s.attr_writes, s.invocations), (0, 0, 0));
        assert_eq!(s.live_objects, 1, "live objects are not a counter");
    }

    #[test]
    fn new_via_invoke() {
        let mut db = db();
        let v = db
            .invoke(
                &FnRef::new_class("Broker"),
                vec![
                    Value::str("Jane"),
                    Value::Int(100),
                    Value::Int(900),
                    Value::Int(10),
                ],
            )
            .unwrap();
        assert!(v.as_obj().is_some());
        assert_eq!(db.extent(&"Broker".into()).len(), 1);
    }
}
