//! Execution counters for the engine.
//!
//! The database keeps interior-mutable counters (`Cell` — attribute reads
//! happen through `&self`) that every primitive operation bumps; a
//! [`EngineStats`] snapshot reads them out for reporting. Cloning a
//! [`crate::Database`] clones the counters with it, so a forked snapshot
//! keeps counting from its parent's totals.

use secflow_obs::MetricsSink;
use std::cell::Cell;

/// The live counters embedded in a [`crate::Database`].
#[derive(Clone, Debug, Default)]
pub(crate) struct OpCounters {
    pub reads: Cell<u64>,
    pub writes: Cell<u64>,
    pub allocs: Cell<u64>,
    pub invocations: Cell<u64>,
}

/// A point-in-time snapshot of one database's execution counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Attribute reads (`r_att`) executed.
    pub attr_reads: u64,
    /// Attribute writes (`w_att`) executed.
    pub attr_writes: u64,
    /// Objects allocated (`new C`).
    pub allocs: u64,
    /// Function invocations entered (access functions and primitives).
    pub invocations: u64,
    /// Objects currently live on the heap.
    pub live_objects: u64,
}

impl EngineStats {
    /// Report every counter into a sink under the `engine.` namespace.
    pub fn record_to(&self, sink: &mut dyn MetricsSink) {
        sink.counter("engine.attr_reads", self.attr_reads);
        sink.counter("engine.attr_writes", self.attr_writes);
        sink.counter("engine.allocs", self.allocs);
        sink.counter("engine.invocations", self.invocations);
        sink.counter("engine.live_objects", self.live_objects);
    }
}

impl OpCounters {
    pub fn snapshot(&self, live_objects: u64) -> EngineStats {
        EngineStats {
            attr_reads: self.reads.get(),
            attr_writes: self.writes.get(),
            allocs: self.allocs.get(),
            invocations: self.invocations.get(),
            live_objects,
        }
    }

    pub fn reset(&self) {
        self.reads.set(0);
        self.writes.set(0);
        self.allocs.set(0);
        self.invocations.set(0);
    }
}

pub(crate) fn bump(cell: &Cell<u64>) {
    cell.set(cell.get() + 1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reset() {
        let c = OpCounters::default();
        bump(&c.reads);
        bump(&c.reads);
        bump(&c.writes);
        let s = c.snapshot(7);
        assert_eq!(s.attr_reads, 2);
        assert_eq!(s.attr_writes, 1);
        assert_eq!(s.live_objects, 7);
        c.reset();
        assert_eq!(c.snapshot(7).attr_reads, 0);
    }

    #[test]
    fn record_to_uses_the_engine_namespace() {
        let s = EngineStats {
            attr_reads: 3,
            attr_writes: 1,
            allocs: 2,
            invocations: 5,
            live_objects: 2,
        };
        let mut rec = secflow_obs::Recorder::new();
        s.record_to(&mut rec);
        let r = rec.into_report();
        assert_eq!(r.counter("engine.attr_reads"), Some(3));
        assert_eq!(r.counter("engine.live_objects"), Some(2));
    }
}
