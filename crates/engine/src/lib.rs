//! # oodb-engine
//!
//! The runtime substrate the paper assumes: an in-memory object-oriented
//! database executing the function-definition and query languages of
//! `oodb-lang` under capability-list access control.
//!
//! * [`heap`] — the mutable object heap with per-class extents.
//! * [`db`] — [`Database`]: schema + heap, attribute access, function
//!   invocation, object creation.
//! * [`eval`] — the expression evaluator for access-function bodies.
//! * [`exec`] — select-from-where query evaluation with left-to-right item
//!   evaluation (§2: *"Items in a select clause are evaluated in order from
//!   left to right"* — the ordering the paper's attack query exploits) and
//!   capability enforcement.
//! * [`session`] — a convenience layer: a user + database, parsing and
//!   running query text, recording an observation log.
//! * [`snapshot`] — human-readable text dumps of database state that
//!   reload against the same schema.
//! * [`stats`] — execution counters ([`EngineStats`]): attribute reads and
//!   writes, allocations, invocations and live objects, reportable into any
//!   `secflow_obs::MetricsSink`.
//!
//! The engine enforces access control *in the abstract operation level*
//! exactly as the paper describes: users invoke whole functions from their
//! capability list; the primitive `r_att`/`w_att` operations inside those
//! functions run unchecked. That asymmetry is precisely what creates the
//! security flaws the `secflow` analysis detects.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod db;
pub mod error;
pub mod eval;
pub mod exec;
pub mod heap;
pub mod ops;
pub mod session;
pub mod snapshot;
pub mod stats;

pub use db::Database;
pub use error::RuntimeError;
pub use exec::{QueryOutput, Row};
pub use heap::Heap;
pub use session::Session;
pub use stats::EngineStats;
