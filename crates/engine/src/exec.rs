//! Select-from-where query execution with capability enforcement.
//!
//! Semantics (§2):
//!
//! * from-clause bindings nest left to right; later sources may mention
//!   earlier variables (`from p in Person, q in r_child(p)`);
//! * class extents are *snapshotted* when a binding starts iterating, so a
//!   `new C(…)` item cannot extend the loop it sits in;
//! * for each binding tuple the where clause runs first (left-to-right,
//!   short-circuit), then the select items **in order from left to right** —
//!   the ordering the paper's probing attack (`select w_budget(b,1),
//!   checkBudget(b), w_budget(b,2), checkBudget(b), …`) relies on;
//! * authorization is syntactic and up-front: every invocation occurring in
//!   the query (items, from clause, where clause, nested queries) must be in
//!   the issuing user's capability list. Function bodies then run trusted.

use crate::db::Database;
use crate::error::RuntimeError;
use crate::ops::eval_basic;
use oodb_lang::query::{Atom, CmpOp, CmpRhs, Cond, FromSource, Invocation, Query, SelectItem};
use oodb_lang::BasicOp;
use oodb_model::{UserName, Value, VarName};
use std::fmt;

/// One result row: the values of the select items for one binding tuple.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row(pub Vec<Value>);

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// The result of a query: rows in deterministic (extent) order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryOutput {
    /// The rows.
    pub rows: Vec<Row>,
}

impl QueryOutput {
    /// Render as the paper's set-of-tuples notation.
    pub fn render(&self) -> String {
        let mut s = String::from("{");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&r.to_string());
        }
        s.push('}');
        s
    }

    /// Flatten single-column outputs.
    pub fn column(&self, i: usize) -> Vec<&Value> {
        self.rows.iter().filter_map(|r| r.0.get(i)).collect()
    }
}

/// Run a query as a user (capability-checked) or administratively (`None`).
pub fn run_query(
    db: &mut Database,
    user: Option<&UserName>,
    query: &Query,
) -> Result<QueryOutput, RuntimeError> {
    if let Some(u) = user {
        authorize(db, u, query)?;
    }
    let mut rows = Vec::new();
    let mut env: Vec<(VarName, Value)> = Vec::new();
    bind_from(db, query, 0, &mut env, &mut rows)?;
    Ok(QueryOutput { rows })
}

/// Check that every invocation in the query is within the user's capability
/// list. This is the paper's access-control model: rights are per function
/// name, verified *only* at the direct-invocation boundary.
pub fn authorize(db: &Database, user: &UserName, query: &Query) -> Result<(), RuntimeError> {
    let caps = db
        .schema()
        .user(user)
        .ok_or_else(|| RuntimeError::UnknownFunction {
            name: format!("user {user}"),
        })?;
    for inv in query.invocations() {
        if !caps.allows(&inv.target) {
            return Err(RuntimeError::NotAuthorized {
                user: user.clone(),
                target: inv.target.clone(),
            });
        }
    }
    Ok(())
}

fn bind_from(
    db: &mut Database,
    query: &Query,
    level: usize,
    env: &mut Vec<(VarName, Value)>,
    rows: &mut Vec<Row>,
) -> Result<(), RuntimeError> {
    if level == query.from.len() {
        if let Some(cond) = &query.filter {
            if !eval_cond(db, cond, env)? {
                return Ok(());
            }
        }
        let mut row = Vec::with_capacity(query.items.len());
        for item in &query.items {
            row.push(eval_item(db, item, env)?);
        }
        rows.push(Row(row));
        return Ok(());
    }
    let (var, source) = &query.from[level];
    let candidates: Vec<Value> = match source {
        FromSource::Class(c) => db.extent(c).iter().copied().map(Value::Obj).collect(),
        FromSource::SetExpr(inv) => {
            let v = eval_invocation(db, inv, env)?;
            match v {
                Value::Set(items) => items,
                other => {
                    return Err(RuntimeError::NotASet {
                        actual: other.to_string(),
                    })
                }
            }
        }
    };
    for value in candidates {
        env.push((var.clone(), value));
        bind_from(db, query, level + 1, env, rows)?;
        env.pop();
    }
    Ok(())
}

fn eval_atom(atom: &Atom, env: &[(VarName, Value)]) -> Result<Value, RuntimeError> {
    match atom {
        Atom::Lit(l) => Ok(l.to_value()),
        Atom::Var(v) => env
            .iter()
            .rev()
            .find(|(n, _)| n == v)
            .map(|(_, val)| val.clone())
            .ok_or_else(|| RuntimeError::UnboundVariable { var: v.to_string() }),
    }
}

fn eval_invocation(
    db: &mut Database,
    inv: &Invocation,
    env: &[(VarName, Value)],
) -> Result<Value, RuntimeError> {
    let mut args = Vec::with_capacity(inv.args.len());
    for a in &inv.args {
        args.push(eval_atom(a, env)?);
    }
    db.invoke(&inv.target, args)
}

fn eval_item(
    db: &mut Database,
    item: &SelectItem,
    env: &mut Vec<(VarName, Value)>,
) -> Result<Value, RuntimeError> {
    match item {
        SelectItem::Invoke(inv) => eval_invocation(db, inv, env),
        SelectItem::Atom(a) => eval_atom(a, env),
        SelectItem::Nested(q) => {
            let mut inner_rows = Vec::new();
            bind_from(db, q, 0, env, &mut inner_rows)?;
            // A single-item nested select yields the set of its values;
            // multi-item selects yield a set of rendered tuples.
            let items: Vec<Value> = if q.items.len() == 1 {
                inner_rows
                    .into_iter()
                    .map(|mut r| r.0.pop().expect("single-item row"))
                    .collect()
            } else {
                inner_rows
                    .into_iter()
                    .map(|r| Value::Str(r.to_string()))
                    .collect()
            };
            Ok(Value::set(items))
        }
    }
}

fn eval_cond(
    db: &mut Database,
    cond: &Cond,
    env: &[(VarName, Value)],
) -> Result<bool, RuntimeError> {
    match cond {
        Cond::True => Ok(true),
        Cond::And(a, b) => Ok(eval_cond(db, a, env)? && eval_cond(db, b, env)?),
        Cond::Or(a, b) => Ok(eval_cond(db, a, env)? || eval_cond(db, b, env)?),
        Cond::Cmp { lhs, op, rhs } => {
            let l = eval_invocation(db, lhs, env)?;
            let r = match rhs {
                CmpRhs::Atom(a) => eval_atom(a, env)?,
                CmpRhs::Invoke(i) => eval_invocation(db, i, env)?,
            };
            let basic = match op {
                CmpOp::Ge => BasicOp::Ge,
                CmpOp::Gt => BasicOp::Gt,
                CmpOp::Le => BasicOp::Le,
                CmpOp::Lt => BasicOp::Lt,
                CmpOp::Eq => BasicOp::EqOp,
                CmpOp::Ne => BasicOp::NeOp,
            };
            let v = eval_basic(basic, &[l, r])?;
            v.as_bool()
                .ok_or_else(|| RuntimeError::mismatch("a boolean condition", &v))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_lang::{parse_query, parse_schema};

    fn db() -> Database {
        let schema = parse_schema(
            r#"
            class Broker { name: string, salary: int, budget: int, profit: int }
            fn checkBudget(broker: Broker): bool {
              r_budget(broker) >= 10 * r_salary(broker)
            }
            user clerk { checkBudget, w_budget, r_name }
            user auditor { r_name, r_salary }
            "#,
        )
        .unwrap();
        let mut db = Database::new(schema).unwrap();
        for (name, salary, budget) in [("John", 150, 1000), ("Jane", 90, 2000)] {
            db.create(
                "Broker",
                vec![
                    Value::str(name),
                    Value::Int(salary),
                    Value::Int(budget),
                    Value::Int(0),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn simple_select() {
        let mut db = db();
        let q = parse_query("select r_name(b), r_salary(b) from b in Broker").unwrap();
        let out = run_query(&mut db, None, &q).unwrap();
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0].0, vec![Value::str("John"), Value::Int(150)]);
        assert_eq!(out.render(), "{(\"John\", 150), (\"Jane\", 90)}");
    }

    #[test]
    fn where_clause_filters() {
        let mut db = db();
        let q = parse_query("select r_name(b) from b in Broker where r_salary(b) > 100").unwrap();
        let out = run_query(&mut db, None, &q).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0].0, vec![Value::str("John")]);
    }

    #[test]
    fn authorization_blocks_unlisted_functions() {
        let mut db = db();
        let clerk = UserName::new("clerk");
        let q = parse_query("select r_salary(b) from b in Broker").unwrap();
        let err = run_query(&mut db, Some(&clerk), &q).unwrap_err();
        assert!(matches!(err, RuntimeError::NotAuthorized { .. }));
        // …including inside the where clause.
        let q = parse_query("select r_name(b) from b in Broker where r_salary(b) > 0").unwrap();
        let err = run_query(&mut db, Some(&clerk), &q).unwrap_err();
        assert!(matches!(err, RuntimeError::NotAuthorized { .. }));
        // The clerk's own capabilities all pass.
        let q = parse_query("select checkBudget(b) from b in Broker").unwrap();
        run_query(&mut db, Some(&clerk), &q).unwrap();
    }

    #[test]
    fn papers_probing_attack_runs() {
        // §3.1: by interleaving writes and checkBudget probes the clerk
        // narrows John's salary. The engine happily executes it — showing
        // why static detection is needed.
        let mut db = db();
        let clerk = UserName::new("clerk");
        let q = parse_query(
            "select w_budget(b, 1500), checkBudget(b), w_budget(b, 1499), checkBudget(b) \
             from b in Broker where r_name(b) == \"John\"",
        )
        .unwrap();
        let out = run_query(&mut db, Some(&clerk), &q).unwrap();
        assert_eq!(out.rows.len(), 1);
        // salary = 150 → threshold 1500: budget 1500 >= 1500 true; 1499 false.
        assert_eq!(
            out.rows[0].0,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Null,
                Value::Bool(false)
            ]
        );
        // The writes persisted.
        let j = Value::Obj(db.extent(&"Broker".into())[0]);
        assert_eq!(
            db.read_attr(&j, &"budget".into()).unwrap(),
            Value::Int(1499)
        );
    }

    #[test]
    fn nested_select_over_set_attribute() {
        let schema = parse_schema(
            r#"
            class Person { name: string, child: {Person} }
            user u { r_name, r_child }
            "#,
        )
        .unwrap();
        let mut db = Database::new(schema).unwrap();
        let kid1 = db
            .create("Person", vec![Value::str("Ann"), Value::set(vec![])])
            .unwrap();
        let kid2 = db
            .create("Person", vec![Value::str("Bob"), Value::set(vec![])])
            .unwrap();
        db.create(
            "Person",
            vec![
                Value::str("John"),
                Value::set(vec![Value::Obj(kid1), Value::Obj(kid2)]),
            ],
        )
        .unwrap();
        let q = parse_query(
            "select (select r_name(q) from q in r_child(p)) from p in Person \
             where r_name(p) == \"John\"",
        )
        .unwrap();
        let out = run_query(&mut db, Some(&UserName::new("u")), &q).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(
            out.rows[0].0[0],
            Value::set(vec![Value::str("Ann"), Value::str("Bob")])
        );
    }

    #[test]
    fn extent_snapshot_prevents_new_loops() {
        let schema = parse_schema(
            r#"
            class C { n: int }
            user u { new C, r_n }
            "#,
        )
        .unwrap();
        let mut db = Database::new(schema).unwrap();
        db.create("C", vec![Value::Int(1)]).unwrap();
        // `new C` per row would extend the extent; the snapshot stops the
        // loop from chasing it.
        let q = parse_query("select new C(2) from c in C").unwrap();
        let out = run_query(&mut db, Some(&UserName::new("u")), &q).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(db.extent(&"C".into()).len(), 2);
    }

    #[test]
    fn item_order_side_effects() {
        let mut db = db();
        // Write then read in the same row: left-to-right evaluation.
        let q = parse_query(
            "select w_budget(b, 7), checkBudget(b) from b in Broker \
             where r_name(b) == \"Jane\"",
        )
        .unwrap();
        let out = run_query(&mut db, None, &q).unwrap();
        // Jane: salary 90, budget now 7 → 7 >= 900 is false.
        assert_eq!(out.rows[0].0[1], Value::Bool(false));
    }

    #[test]
    fn unknown_user_rejected() {
        let mut db = db();
        let q = parse_query("select r_name(b) from b in Broker").unwrap();
        assert!(run_query(&mut db, Some(&UserName::new("ghost")), &q).is_err());
    }
}
