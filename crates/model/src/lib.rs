//! # oodb-model
//!
//! Data-model substrate for the reproduction of
//! *K. Tajima, “Static Detection of Security Flaws in Object-Oriented
//! Databases”, SIGMOD 1996*.
//!
//! The paper (§2) assumes a deliberately simple object-oriented data model:
//!
//! * **basic types** (`int`, `bool`, `string`) plus the special value `null`,
//! * **classes** whose instances are mutable objects with typed attributes,
//! * **set types** `{t}`,
//! * object identifiers with *no printable form* (the paper's §3.2 "latter
//!   case": users can only compare objects for identity via from-clause
//!   variables, never print or forge an OID),
//! * per-user **capability lists**: the set of access-function names and
//!   *special function* names (`r_att`, `w_att`, `new C`) the user may invoke
//!   in queries.
//!
//! This crate owns exactly those vocabulary items — no syntax, no evaluation,
//! no analysis. The function-definition and query languages live in
//! [`oodb-lang`], the runtime in [`oodb-engine`], and the paper's
//! contribution (the static flaw-detection algorithm) in [`secflow`].
//!
//! [`oodb-lang`]: ../oodb_lang/index.html
//! [`oodb-engine`]: ../oodb_engine/index.html
//! [`secflow`]: ../secflow/index.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capability;
pub mod class;
pub mod error;
pub mod ident;
pub mod ty;
pub mod value;

pub use capability::{CapabilityList, FnRef, User};
pub use class::{AttrDef, ClassDef, ClassTable};
pub use error::ModelError;
pub use ident::{AttrName, ClassName, FnName, UserName, VarName};
pub use ty::{BasicType, Type};
pub use value::{Oid, Value};
