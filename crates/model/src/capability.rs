//! Capability lists and invocable-function references.
//!
//! §2: *"A capability list is a set of all access function names (or names of
//! special functions) that the user is allowed to invoke in the query."*
//!
//! The invocable things are therefore:
//!
//! * access functions, by name;
//! * the special read function `r_att` for an attribute;
//! * the special write function `w_att` for an attribute;
//! * the special constructor `new C` for a class.
//!
//! [`FnRef`] is the shared vocabulary for "something a user can invoke"; the
//! analysis ([`secflow`]) takes a capability list, unfolds every member, and
//! reasons about the resulting expression set.
//!
//! [`secflow`]: ../../secflow/index.html

use crate::ident::{AttrName, ClassName, FnName, UserName};
use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;

/// A reference to an invocable function: an access function or one of the
/// paper's special functions.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FnRef {
    /// A named access function.
    Access(FnName),
    /// `r_att`: read the attribute's current value.
    Read(AttrName),
    /// `w_att`: write a new value into the attribute (returns `null`).
    Write(AttrName),
    /// `new C`: create a fresh instance of class `C`.
    New(ClassName),
}

impl FnRef {
    /// Reference an access function.
    pub fn access(name: impl Into<FnName>) -> FnRef {
        FnRef::Access(name.into())
    }

    /// Reference the read special function for an attribute.
    pub fn read(attr: impl Into<AttrName>) -> FnRef {
        FnRef::Read(attr.into())
    }

    /// Reference the write special function for an attribute.
    pub fn write(attr: impl Into<AttrName>) -> FnRef {
        FnRef::Write(attr.into())
    }

    /// Reference the constructor for a class.
    pub fn new_class(class: impl Into<ClassName>) -> FnRef {
        FnRef::New(class.into())
    }

    /// Is this one of the special functions (`r_`, `w_`, `new`)?
    pub fn is_special(&self) -> bool {
        !matches!(self, FnRef::Access(_))
    }
}

impl fmt::Display for FnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FnRef::Access(n) => write!(f, "{n}"),
            FnRef::Read(a) => write!(f, "r_{a}"),
            FnRef::Write(a) => write!(f, "w_{a}"),
            FnRef::New(c) => write!(f, "new {c}"),
        }
    }
}

impl FromStr for FnRef {
    type Err = String;

    /// Parse the paper's naming convention: `r_salary`, `w_budget`,
    /// `new Broker`, anything else is an access-function name.
    fn from_str(s: &str) -> Result<FnRef, String> {
        let s = s.trim();
        if s.is_empty() {
            return Err("empty function reference".to_owned());
        }
        if s == "new" {
            return Err("`new` without class name".to_owned());
        }
        if let Some(rest) = s.strip_prefix("new ") {
            let c = rest.trim();
            if c.is_empty() {
                return Err("`new` without class name".to_owned());
            }
            return Ok(FnRef::new_class(c));
        }
        if let Some(rest) = s.strip_prefix("r_") {
            if !rest.is_empty() {
                return Ok(FnRef::read(rest));
            }
        }
        if let Some(rest) = s.strip_prefix("w_") {
            if !rest.is_empty() {
                return Ok(FnRef::write(rest));
            }
        }
        Ok(FnRef::access(s))
    }
}

/// A user's capability list: the set of [`FnRef`]s the user may invoke.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CapabilityList {
    entries: BTreeSet<FnRef>,
}

impl CapabilityList {
    /// Empty list.
    pub fn new() -> CapabilityList {
        CapabilityList::default()
    }

    /// Grant a capability; returns whether it was newly added.
    pub fn grant(&mut self, f: FnRef) -> bool {
        self.entries.insert(f)
    }

    /// Revoke a capability; returns whether it was present.
    pub fn revoke(&mut self, f: &FnRef) -> bool {
        self.entries.remove(f)
    }

    /// Is the capability granted?
    pub fn allows(&self, f: &FnRef) -> bool {
        self.entries.contains(f)
    }

    /// Iterate in deterministic (ordered) fashion.
    pub fn iter(&self) -> impl Iterator<Item = &FnRef> {
        self.entries.iter()
    }

    /// Number of granted capabilities.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is anything granted?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Is `self` a subset of `other`? (Used by the A(R)-monotonicity
    /// property tests: growing a capability list can only add flaws.)
    pub fn is_subset(&self, other: &CapabilityList) -> bool {
        self.entries.is_subset(&other.entries)
    }
}

impl FromIterator<FnRef> for CapabilityList {
    fn from_iter<I: IntoIterator<Item = FnRef>>(iter: I) -> CapabilityList {
        CapabilityList {
            entries: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for CapabilityList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "}}")
    }
}

/// A database user: a name plus a capability list. §2 stores the pair
/// `(u_name, {f_name})` in the database; we keep users in the schema-level
/// catalog managed by `oodb-engine`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct User {
    /// User name.
    pub name: UserName,
    /// Functions this user may invoke.
    pub capabilities: CapabilityList,
}

impl User {
    /// Create a user with the given capabilities.
    pub fn new(name: impl Into<UserName>, capabilities: CapabilityList) -> User {
        User {
            name: name.into(),
            capabilities,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnref_parse_and_display_round_trip() {
        for s in ["checkBudget", "r_salary", "w_budget", "new Broker"] {
            let f: FnRef = s.parse().unwrap();
            assert_eq!(f.to_string(), s);
        }
    }

    #[test]
    fn fnref_parse_oddities() {
        // A bare `r_` / `w_` is an access-function name, not a special fn.
        assert_eq!("r_".parse::<FnRef>().unwrap(), FnRef::access("r_"));
        assert_eq!("w_".parse::<FnRef>().unwrap(), FnRef::access("w_"));
        assert!("".parse::<FnRef>().is_err());
        assert!("new ".parse::<FnRef>().is_err());
        assert_eq!(
            "  r_salary ".parse::<FnRef>().unwrap(),
            FnRef::read("salary")
        );
    }

    #[test]
    fn special_predicate() {
        assert!(!FnRef::access("f").is_special());
        assert!(FnRef::read("a").is_special());
        assert!(FnRef::write("a").is_special());
        assert!(FnRef::new_class("C").is_special());
    }

    #[test]
    fn capability_list_grant_revoke() {
        let mut caps = CapabilityList::new();
        assert!(caps.grant(FnRef::access("checkBudget")));
        assert!(!caps.grant(FnRef::access("checkBudget")));
        assert!(caps.allows(&FnRef::access("checkBudget")));
        assert!(!caps.allows(&FnRef::read("salary")));
        assert!(caps.revoke(&FnRef::access("checkBudget")));
        assert!(!caps.revoke(&FnRef::access("checkBudget")));
        assert!(caps.is_empty());
    }

    #[test]
    fn capability_list_subset_and_display() {
        let small: CapabilityList = [FnRef::access("f")].into_iter().collect();
        let big: CapabilityList = [FnRef::access("f"), FnRef::write("budget")]
            .into_iter()
            .collect();
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert_eq!(big.to_string(), "{f, w_budget}");
        assert_eq!(big.len(), 2);
    }

    #[test]
    fn user_holds_caps() {
        let u = User::new(
            "clerk",
            [FnRef::access("checkBudget")].into_iter().collect(),
        );
        assert_eq!(u.name.as_str(), "clerk");
        assert!(u.capabilities.allows(&FnRef::access("checkBudget")));
    }
}
