//! Model-level errors.

use crate::ident::{AttrName, ClassName};
use std::fmt;

/// Errors raised while constructing or validating model-level entities.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// A class was defined twice.
    DuplicateClass {
        /// Offending class name.
        class: ClassName,
    },
    /// An attribute name appeared twice within one class.
    DuplicateAttribute {
        /// Class holding the duplicate.
        class: ClassName,
        /// Offending attribute name.
        attr: AttrName,
    },
    /// A type referenced a class that does not exist.
    UnknownClass {
        /// Missing class name.
        class: ClassName,
        /// Where it was referenced from.
        context: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateClass { class } => {
                write!(f, "class `{class}` defined more than once")
            }
            ModelError::DuplicateAttribute { class, attr } => {
                write!(
                    f,
                    "attribute `{attr}` defined more than once in class `{class}`"
                )
            }
            ModelError::UnknownClass { class, context } => {
                write!(f, "unknown class `{class}` referenced from {context}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = ModelError::DuplicateClass {
            class: ClassName::new("Broker"),
        };
        assert_eq!(e.to_string(), "class `Broker` defined more than once");
        let e = ModelError::UnknownClass {
            class: ClassName::new("X"),
            context: "attribute A.b".to_owned(),
        };
        assert!(e.to_string().contains("attribute A.b"));
    }
}
