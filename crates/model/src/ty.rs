//! The type language of the paper's data model (§2):
//!
//! ```text
//! t ::= b | c_name | {t}
//! b ::= int | bool | string
//! ```
//!
//! plus `null`, which the paper uses both as the "no useful value" result of
//! `w_att` and as the declared return type of procedures such as
//! `updateSalary(broker):null`. We model it as its own unit type [`Type::Null`]
//! whose sole inhabitant is the value `null`.

use crate::ident::ClassName;
use std::fmt;

/// A basic (printable, user-suppliable) type.
///
/// Basic types matter to the analysis: the paper's inferability axioms only
/// apply to expressions of basic type (object identifiers have no printable
/// form, §3.2), while alterability applies to every type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BasicType {
    /// Mathematical integers; realised as `i64` in the engine.
    Int,
    /// Booleans.
    Bool,
    /// Character strings.
    Str,
}

impl fmt::Display for BasicType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BasicType::Int => "int",
            BasicType::Bool => "bool",
            BasicType::Str => "string",
        })
    }
}

/// A type in the paper's model.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// A basic type.
    Basic(BasicType),
    /// An object type: instances of the named class.
    Class(ClassName),
    /// A (finite) set of elements of the inner type.
    Set(Box<Type>),
    /// The unit type of the special value `null`.
    Null,
}

impl Type {
    /// Shorthand for `Type::Basic(BasicType::Int)`.
    pub const INT: Type = Type::Basic(BasicType::Int);
    /// Shorthand for `Type::Basic(BasicType::Bool)`.
    pub const BOOL: Type = Type::Basic(BasicType::Bool);
    /// Shorthand for `Type::Basic(BasicType::Str)`.
    pub const STR: Type = Type::Basic(BasicType::Str);

    /// Build an object type.
    pub fn class(name: impl Into<ClassName>) -> Type {
        Type::Class(name.into())
    }

    /// Build a set type.
    pub fn set(inner: Type) -> Type {
        Type::Set(Box::new(inner))
    }

    /// Is this a basic (printable) type? Only such expressions receive
    /// inferability axioms in the analysis.
    pub fn is_basic(&self) -> bool {
        matches!(self, Type::Basic(_))
    }

    /// Is this an object type?
    pub fn is_class(&self) -> bool {
        matches!(self, Type::Class(_))
    }

    /// The class name if this is an object type.
    pub fn as_class(&self) -> Option<&ClassName> {
        match self {
            Type::Class(c) => Some(c),
            _ => None,
        }
    }

    /// The element type if this is a set type.
    pub fn as_set_elem(&self) -> Option<&Type> {
        match self {
            Type::Set(t) => Some(t),
            _ => None,
        }
    }

    /// Whether a value of type `other` may be used where `self` is expected.
    ///
    /// The paper's language has no subtyping (§3.1 explicitly defers
    /// subtyping/overloading), so assignability is plain equality — except
    /// that `null` is additionally accepted for class types, mirroring the
    /// paper's use of `null` as an object placeholder.
    pub fn accepts(&self, other: &Type) -> bool {
        self == other || (self.is_class() && *other == Type::Null)
    }
}

impl From<BasicType> for Type {
    fn from(b: BasicType) -> Type {
        Type::Basic(b)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Basic(b) => write!(f, "{b}"),
            Type::Class(c) => write!(f, "{c}"),
            Type::Set(t) => write!(f, "{{{t}}}"),
            Type::Null => write!(f, "null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trip_shapes() {
        assert_eq!(Type::INT.to_string(), "int");
        assert_eq!(Type::class("Broker").to_string(), "Broker");
        assert_eq!(Type::set(Type::class("Person")).to_string(), "{Person}");
        assert_eq!(Type::set(Type::set(Type::BOOL)).to_string(), "{{bool}}");
        assert_eq!(Type::Null.to_string(), "null");
    }

    #[test]
    fn basic_predicate() {
        assert!(Type::INT.is_basic());
        assert!(Type::STR.is_basic());
        assert!(!Type::class("C").is_basic());
        assert!(!Type::set(Type::INT).is_basic());
        assert!(!Type::Null.is_basic());
    }

    #[test]
    fn accepts_null_for_classes_only() {
        assert!(Type::class("C").accepts(&Type::Null));
        assert!(!Type::INT.accepts(&Type::Null));
        assert!(Type::Null.accepts(&Type::Null));
        assert!(Type::INT.accepts(&Type::INT));
        assert!(!Type::INT.accepts(&Type::BOOL));
        assert!(!Type::set(Type::INT).accepts(&Type::Null));
    }

    #[test]
    fn as_accessors() {
        let c = Type::class("Broker");
        assert_eq!(c.as_class().unwrap().as_str(), "Broker");
        assert!(Type::INT.as_class().is_none());
        let s = Type::set(Type::INT);
        assert_eq!(s.as_set_elem(), Some(&Type::INT));
        assert!(Type::INT.as_set_elem().is_none());
    }
}
