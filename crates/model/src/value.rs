//! Runtime values and object identifiers.
//!
//! The paper's §3.2 fixes the "non-printable OID" regime: object identifiers
//! have no external form, so users can neither forge nor print them — they
//! can only route objects through from-clause variables and observe object
//! *identity* (two expressions denoting the same object). [`Oid`] is
//! therefore deliberately opaque: its `Display` prints `(a <Class> object)`
//! exactly as the paper sketches, never the internal index.

use crate::ident::ClassName;
use crate::ty::{BasicType, Type};
use std::fmt;

/// An opaque object identifier.
///
/// Equality is identity. Ordering exists only so OIDs can live in sorted
/// containers; it is not observable through the query surface.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid(u64);

impl Oid {
    /// Construct from a raw slot index. Only the engine's object heap should
    /// call this; everything else treats OIDs as opaque.
    pub fn from_raw(raw: u64) -> Oid {
        Oid(raw)
    }

    /// The raw slot index, for the heap only.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Debug output is for developers; it may show the index.
        write!(f, "Oid#{}", self.0)
    }
}

/// A runtime value.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// Reference to a mutable object.
    Obj(Oid),
    /// A set value. Kept sorted and deduplicated so that set equality is
    /// structural equality.
    Set(Vec<Value>),
    /// The special value `null`.
    Null,
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Build a set value, normalising order and duplicates.
    pub fn set(mut items: Vec<Value>) -> Value {
        items.sort();
        items.dedup();
        Value::Set(items)
    }

    /// The most specific type of this value, given a way to look up the class
    /// of an object. Returns `None` for heterogeneous or empty sets where the
    /// element type cannot be recovered (the caller should consult declared
    /// types instead).
    pub fn type_of(&self, class_of: &dyn Fn(Oid) -> Option<ClassName>) -> Option<Type> {
        match self {
            Value::Int(_) => Some(Type::INT),
            Value::Bool(_) => Some(Type::BOOL),
            Value::Str(_) => Some(Type::STR),
            Value::Obj(oid) => class_of(*oid).map(Type::Class),
            Value::Null => Some(Type::Null),
            Value::Set(items) => {
                let mut elem: Option<Type> = None;
                for item in items {
                    let t = item.type_of(class_of)?;
                    match &elem {
                        None => elem = Some(t),
                        Some(prev) if *prev == t => {}
                        Some(_) => return None,
                    }
                }
                elem.map(Type::set)
            }
        }
    }

    /// Does this value inhabit the given basic type?
    pub fn has_basic_type(&self, b: BasicType) -> bool {
        matches!(
            (self, b),
            (Value::Int(_), BasicType::Int)
                | (Value::Bool(_), BasicType::Bool)
                | (Value::Str(_), BasicType::Str)
        )
    }

    /// Integer payload, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object payload, if any.
    pub fn as_obj(&self) -> Option<Oid> {
        match self {
            Value::Obj(o) => Some(*o),
            _ => None,
        }
    }

    /// Set payload, if any.
    pub fn as_set(&self) -> Option<&[Value]> {
        match self {
            Value::Set(v) => Some(v),
            _ => None,
        }
    }

    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    /// The *user-visible* rendering: object identifiers print as
    /// `(a object)` with no distinguishing content, per §3.2.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Obj(_) => write!(f, "(an object)"),
            Value::Null => write!(f, "null"),
            Value::Set(items) => {
                write!(f, "{{")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_owned())
    }
}

impl From<Oid> for Value {
    fn from(o: Oid) -> Value {
        Value::Obj(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oids_are_opaque_in_display() {
        let v = Value::Obj(Oid::from_raw(730710));
        assert_eq!(v.to_string(), "(an object)");
        // Debug, for developers, may reveal the slot.
        assert_eq!(format!("{:?}", Oid::from_raw(7)), "Oid#7");
    }

    #[test]
    fn set_normalisation() {
        let a = Value::set(vec![Value::Int(2), Value::Int(1), Value::Int(2)]);
        let b = Value::set(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(a, b);
    }

    #[test]
    fn type_of_values() {
        let class_of = |_o: Oid| Some(ClassName::new("Broker"));
        assert_eq!(Value::Int(3).type_of(&class_of), Some(Type::INT));
        assert_eq!(
            Value::Obj(Oid::from_raw(0)).type_of(&class_of),
            Some(Type::class("Broker"))
        );
        assert_eq!(
            Value::set(vec![Value::Int(1), Value::Int(2)]).type_of(&class_of),
            Some(Type::set(Type::INT))
        );
        // Heterogeneous sets have no recoverable type.
        assert_eq!(
            Value::set(vec![Value::Int(1), Value::Bool(true)]).type_of(&class_of),
            None
        );
        // Empty sets have no recoverable element type either.
        assert_eq!(Value::set(vec![]).type_of(&class_of), None);
    }

    #[test]
    fn basic_type_checks() {
        assert!(Value::Int(0).has_basic_type(BasicType::Int));
        assert!(!Value::Int(0).has_basic_type(BasicType::Bool));
        assert!(Value::str("x").has_basic_type(BasicType::Str));
        assert!(!Value::Null.has_basic_type(BasicType::Int));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("hi").as_str(), Some("hi"));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Int(7).as_obj(), None);
        let s = Value::set(vec![Value::Int(1)]);
        assert_eq!(s.as_set().unwrap().len(), 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::str("a\"b").to_string(), "\"a\\\"b\"");
        assert_eq!(
            Value::set(vec![Value::Int(2), Value::Int(1)]).to_string(),
            "{1, 2}"
        );
        assert_eq!(Value::Null.to_string(), "null");
    }
}
