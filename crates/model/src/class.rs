//! Class definitions and the class table.
//!
//! A schema's class part (§2): `c_name : [att : t, …]` declares that
//! instances of `c_name` have mutable attributes `att` of type `t`.
//! Attribute names are unique within a class; the paper additionally treats
//! the pair (attribute name, receiver class) as determining the special
//! functions `r_att` / `w_att`.

use crate::error::ModelError;
use crate::ident::{AttrName, ClassName};
use crate::ty::Type;
use std::collections::BTreeMap;
use std::fmt;

/// One attribute declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttrDef {
    /// Attribute name.
    pub name: AttrName,
    /// Declared type.
    pub ty: Type,
}

/// One class definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassDef {
    /// Class name.
    pub name: ClassName,
    /// Attribute declarations, in declaration order (order matters for the
    /// `new C(e, …)` constructor's positional arguments).
    pub attrs: Vec<AttrDef>,
}

impl ClassDef {
    /// Create a class definition, rejecting duplicate attribute names.
    pub fn new(
        name: impl Into<ClassName>,
        attrs: Vec<(AttrName, Type)>,
    ) -> Result<ClassDef, ModelError> {
        let name = name.into();
        let mut seen = std::collections::BTreeSet::new();
        for (a, _) in &attrs {
            if !seen.insert(a.clone()) {
                return Err(ModelError::DuplicateAttribute {
                    class: name,
                    attr: a.clone(),
                });
            }
        }
        Ok(ClassDef {
            name,
            attrs: attrs
                .into_iter()
                .map(|(name, ty)| AttrDef { name, ty })
                .collect(),
        })
    }

    /// Look up an attribute's declared type.
    pub fn attr_type(&self, attr: &AttrName) -> Option<&Type> {
        self.attrs.iter().find(|a| &a.name == attr).map(|a| &a.ty)
    }

    /// Index of an attribute in declaration order.
    pub fn attr_index(&self, attr: &AttrName) -> Option<usize> {
        self.attrs.iter().position(|a| &a.name == attr)
    }
}

impl fmt::Display for ClassDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class {} {{ ", self.name)?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.ty)?;
        }
        write!(f, " }}")
    }
}

/// All class definitions of a schema, with name-based lookup.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassTable {
    classes: BTreeMap<ClassName, ClassDef>,
}

impl ClassTable {
    /// Empty table.
    pub fn new() -> ClassTable {
        ClassTable::default()
    }

    /// Insert a class, rejecting duplicates and attributes of undeclarable
    /// types (class-typed attributes may reference classes inserted later;
    /// call [`ClassTable::validate`] once the table is complete).
    pub fn insert(&mut self, def: ClassDef) -> Result<(), ModelError> {
        if self.classes.contains_key(&def.name) {
            return Err(ModelError::DuplicateClass { class: def.name });
        }
        self.classes.insert(def.name.clone(), def);
        Ok(())
    }

    /// Look up a class.
    pub fn get(&self, name: &ClassName) -> Option<&ClassDef> {
        self.classes.get(name)
    }

    /// Look up a class by bare string.
    pub fn get_str(&self, name: &str) -> Option<&ClassDef> {
        self.classes.get(name)
    }

    /// Iterate over classes in name order.
    pub fn iter(&self) -> impl Iterator<Item = &ClassDef> {
        self.classes.values()
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Check that every class type mentioned by an attribute exists.
    pub fn validate(&self) -> Result<(), ModelError> {
        for def in self.classes.values() {
            for attr in &def.attrs {
                self.validate_type(&attr.ty, def, attr)?;
            }
        }
        Ok(())
    }

    fn validate_type(&self, ty: &Type, def: &ClassDef, attr: &AttrDef) -> Result<(), ModelError> {
        match ty {
            Type::Basic(_) | Type::Null => Ok(()),
            Type::Class(c) => {
                if self.classes.contains_key(c) {
                    Ok(())
                } else {
                    Err(ModelError::UnknownClass {
                        class: c.clone(),
                        context: format!("attribute {}.{}", def.name, attr.name),
                    })
                }
            }
            Type::Set(inner) => self.validate_type(inner, def, attr),
        }
    }

    /// The classes that declare an attribute with this name, in name order.
    /// The paper indexes `r_att` / `w_att` by attribute name; type checking
    /// uses this to resolve the receiver class.
    pub fn classes_with_attr(&self, attr: &AttrName) -> Vec<&ClassDef> {
        self.classes
            .values()
            .filter(|c| c.attr_type(attr).is_some())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn broker() -> ClassDef {
        ClassDef::new(
            "Broker",
            vec![
                (AttrName::new("name"), Type::STR),
                (AttrName::new("salary"), Type::INT),
                (AttrName::new("budget"), Type::INT),
                (AttrName::new("profit"), Type::INT),
            ],
        )
        .unwrap()
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = ClassDef::new(
            "C",
            vec![
                (AttrName::new("x"), Type::INT),
                (AttrName::new("x"), Type::BOOL),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::DuplicateAttribute { .. }));
    }

    #[test]
    fn attr_lookup() {
        let b = broker();
        assert_eq!(b.attr_type(&AttrName::new("salary")), Some(&Type::INT));
        assert_eq!(b.attr_index(&AttrName::new("budget")), Some(2));
        assert_eq!(b.attr_type(&AttrName::new("nope")), None);
    }

    #[test]
    fn table_insert_and_duplicate() {
        let mut t = ClassTable::new();
        t.insert(broker()).unwrap();
        let err = t.insert(broker()).unwrap_err();
        assert!(matches!(err, ModelError::DuplicateClass { .. }));
        assert_eq!(t.len(), 1);
        assert!(t.get_str("Broker").is_some());
    }

    #[test]
    fn validate_forward_references() {
        let mut t = ClassTable::new();
        t.insert(
            ClassDef::new(
                "Person",
                vec![(AttrName::new("child"), Type::set(Type::class("Person")))],
            )
            .unwrap(),
        )
        .unwrap();
        t.validate().unwrap();

        let mut bad = ClassTable::new();
        bad.insert(ClassDef::new("A", vec![(AttrName::new("b"), Type::class("Missing"))]).unwrap())
            .unwrap();
        assert!(matches!(
            bad.validate(),
            Err(ModelError::UnknownClass { .. })
        ));
    }

    #[test]
    fn classes_with_attr_finds_all() {
        let mut t = ClassTable::new();
        t.insert(broker()).unwrap();
        t.insert(ClassDef::new("Employee", vec![(AttrName::new("salary"), Type::INT)]).unwrap())
            .unwrap();
        let hits = t.classes_with_attr(&AttrName::new("salary"));
        assert_eq!(hits.len(), 2);
        let hits = t.classes_with_attr(&AttrName::new("profit"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name.as_str(), "Broker");
    }

    #[test]
    fn display() {
        assert_eq!(
            broker().to_string(),
            "class Broker { name: string, salary: int, budget: int, profit: int }"
        );
    }
}
