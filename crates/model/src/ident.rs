//! Interned-ish name newtypes.
//!
//! The paper distinguishes class names, attribute names, function names,
//! (from-clause / argument) variable names, and user names. Using distinct
//! newtypes keeps the rest of the workspace honest about which namespace a
//! string lives in: a capability list cannot accidentally hold an attribute
//! name, a requirement cannot name a class, and so on.
//!
//! All newtypes are cheap to clone (`Arc<str>`) because names are copied
//! freely into unfolded expression arenas and proof trees.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

macro_rules! name_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(Arc<str>);

        impl $name {
            /// Create a new name from anything string-like.
            pub fn new(s: impl AsRef<str>) -> Self {
                Self(Arc::from(s.as_ref()))
            }

            /// View the name as a `&str`.
            pub fn as_str(&self) -> &str {
                &self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:?})"), &*self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                Self::new(s)
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> Self {
                Self::new(s)
            }
        }

        impl Borrow<str> for $name {
            fn borrow(&self) -> &str {
                &self.0
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }
    };
}

name_newtype!(
    /// Name of a class (`Broker`, `Person`, …).
    ClassName
);
name_newtype!(
    /// Name of an attribute (`salary`, `budget`, …). Attribute names are
    /// global in the paper's model: the special functions `r_att` / `w_att`
    /// are indexed by attribute name alone, and the receiving class is
    /// recovered by type checking.
    AttrName
);
name_newtype!(
    /// Name of an access function (`checkBudget`, `updateSalary`, …).
    FnName
);
name_newtype!(
    /// Name of an argument variable or from-clause variable.
    VarName
);
name_newtype!(
    /// Name of a database user (the `u` of a security requirement).
    UserName
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_is_bare() {
        assert_eq!(ClassName::new("Broker").to_string(), "Broker");
        assert_eq!(
            format!("{:?}", AttrName::new("salary")),
            "AttrName(\"salary\")"
        );
    }

    #[test]
    fn equality_and_hash_by_content() {
        let a = FnName::new("checkBudget");
        let b = FnName::from("checkBudget".to_string());
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains("checkBudget"));
        assert!(set.contains(&b));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = [VarName::new("z"), VarName::new("a"), VarName::new("m")];
        v.sort();
        let names: Vec<&str> = v.iter().map(|n| n.as_str()).collect();
        assert_eq!(names, ["a", "m", "z"]);
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let a = UserName::new("clerk");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.as_str(), "clerk");
    }
}
