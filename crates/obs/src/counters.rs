//! The counter registry.

/// An insertion-ordered map of named monotone counters.
///
/// The registry is a `Vec` rather than a hash map: metric sets are small
/// (dozens of names), insertion order is the natural display order, and
/// deterministic iteration keeps text/JSON output diff-stable.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Counters {
    entries: Vec<(String, u64)>,
}

impl Counters {
    /// An empty registry.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Add `delta` to `name` (creating it at zero first).
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some((_, v)) = self.entries.iter_mut().find(|(n, _)| n == name) {
            *v += delta;
        } else {
            self.entries.push((name.to_owned(), delta));
        }
    }

    /// Increment `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Raise `name` to `value` if it is currently lower (high-water marks).
    pub fn set_max(&mut self, name: &str, value: u64) {
        if let Some((_, v)) = self.entries.iter_mut().find(|(n, _)| n == name) {
            *v = (*v).max(value);
        } else {
            self.entries.push((name.to_owned(), value));
        }
    }

    /// Current value (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Iterate `(name, value)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fold another registry into this one (summing shared names).
    pub fn merge(&mut self, other: &Counters) {
        for (name, v) in other.iter() {
            self.add(name, v);
        }
    }

    /// Report every counter into a sink.
    pub fn record_to(&self, sink: &mut dyn crate::sink::MetricsSink) {
        for (name, v) in self.iter() {
            sink.counter(name, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_inc_get() {
        let mut c = Counters::new();
        c.inc("rounds");
        c.add("rounds", 4);
        assert_eq!(c.get("rounds"), 5);
        assert_eq!(c.get("missing"), 0);
    }

    #[test]
    fn set_max_is_a_high_water_mark() {
        let mut c = Counters::new();
        c.set_max("hwm", 10);
        c.set_max("hwm", 3);
        assert_eq!(c.get("hwm"), 10);
        c.set_max("hwm", 12);
        assert_eq!(c.get("hwm"), 12);
    }

    #[test]
    fn merge_sums_and_keeps_order() {
        let mut a = Counters::new();
        a.add("x", 1);
        a.add("y", 2);
        let mut b = Counters::new();
        b.add("y", 3);
        b.add("z", 4);
        a.merge(&b);
        let names: Vec<&str> = a.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["x", "y", "z"]);
        assert_eq!(a.get("y"), 5);
    }
}
