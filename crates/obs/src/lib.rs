//! # secflow-obs — observability for the analysis pipeline
//!
//! The paper's analysis is a saturation procedure whose cost is dominated
//! by rule firings over an `O(N³)` term universe; the engine side serves
//! sessions of capability-checked queries. This crate is the measurement
//! layer both sides report into:
//!
//! * [`time`] — [`Stopwatch`] and [`Phases`] for wall-clock phase timing
//!   (parse → typecheck → unfold → closure → report; session → query);
//! * [`counters`] — an insertion-ordered [`Counters`] registry for closure
//!   internals (terms per capability kind, firings per rule, fixpoint
//!   rounds, worklist high-water mark, dedup hit rate, budget headroom) and
//!   engine statistics (queries executed, heap objects touched);
//! * [`sink`] — the [`MetricsSink`] trait decoupling producers from
//!   consumers, with a no-op [`NullSink`] (so instrumented code paths cost
//!   ~nothing when metrics are off) and a [`Recorder`] that materialises a
//!   [`MetricsReport`];
//! * [`report`] — [`MetricsReport`]: a human-readable summary table and a
//!   machine-readable JSON export;
//! * [`json`] — a dependency-free JSON value type, writer and parser (the
//!   build environment is offline, so no serde);
//! * [`profile`] — process-global profiling hooks: install a callback and
//!   every [`profile::scope`] in the pipeline reports its wall-clock to it;
//! * [`trace`] — structured span/instant trace events with monotonic
//!   timestamps, encoded as JSON Lines or Chrome `trace_event` JSON
//!   (Perfetto-loadable).
//!
//! Everything here is plain `std`; the hot closure loop reports through a
//! monomorphised observer in `secflow::closure`, so the disabled
//! configuration compiles to the uninstrumented code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod json;
pub mod profile;
pub mod report;
pub mod sink;
pub mod time;
pub mod trace;

pub use counters::Counters;
pub use json::Json;
pub use report::MetricsReport;
pub use sink::{MetricsSink, NullSink, Recorder};
pub use time::{Phases, Stopwatch};
pub use trace::{TraceBuffer, TraceEvent, TraceFormat};
