//! The sink trait decoupling metric producers from consumers.

use std::time::Duration;

use crate::report::MetricsReport;

/// Something metrics can be reported into.
///
/// Producers (the closure engine, the query engine, the CLI driver) only
/// ever see `&mut dyn MetricsSink`; whether the values end up in a table,
/// a JSON blob, or nowhere at all is the caller's choice. Every method has
/// a no-op default so a sink may care about only one signal kind.
pub trait MetricsSink {
    /// A monotone count observed at value `value`.
    fn counter(&mut self, _name: &str, _value: u64) {}

    /// A point-in-time measurement (ratios, sizes, headroom).
    fn gauge(&mut self, _name: &str, _value: f64) {}

    /// A completed timed span.
    fn span(&mut self, _name: &str, _wall: Duration) {}
}

/// The sink that discards everything. This is the default wiring: code
/// paths stay instrumented but the reports vanish at negligible cost.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl MetricsSink for NullSink {}

/// A sink that materialises everything it sees into a [`MetricsReport`].
///
/// Repeated counter reports keep the **latest** value (producers report
/// running totals, not deltas); repeated spans accumulate.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    report: MetricsReport,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Consume the recorder, yielding the collected report.
    pub fn into_report(self) -> MetricsReport {
        self.report
    }

    /// Borrow the report collected so far.
    pub fn report(&self) -> &MetricsReport {
        &self.report
    }
}

impl MetricsSink for Recorder {
    fn counter(&mut self, name: &str, value: u64) {
        self.report.set_counter(name, value);
    }

    fn gauge(&mut self, name: &str, value: f64) {
        self.report.set_gauge(name, value);
    }

    fn span(&mut self, name: &str, wall: Duration) {
        self.report.add_span(name, wall);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_accepts_everything() {
        let mut s = NullSink;
        s.counter("a", 1);
        s.gauge("b", 2.0);
        s.span("c", Duration::from_millis(1));
    }

    #[test]
    fn recorder_keeps_latest_counter_and_sums_spans() {
        let mut r = Recorder::new();
        r.counter("terms", 10);
        r.counter("terms", 25);
        r.span("closure", Duration::from_millis(2));
        r.span("closure", Duration::from_millis(3));
        let report = r.into_report();
        assert_eq!(report.counter("terms"), Some(25));
        assert_eq!(report.span("closure"), Some(Duration::from_millis(5)));
    }
}
