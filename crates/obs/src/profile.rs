//! Process-global profiling hooks.
//!
//! External profilers (or the CLI's `--trace` flag) install a callback once
//! per process; after that, every [`scope`] guard in the pipeline reports
//! `(name, wall-clock)` to it when dropped. When no hook is installed the
//! fast path is a single relaxed atomic load — cheap enough to leave scopes
//! in release builds.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// The installed callback type: `(span name, wall-clock)`.
type Hook = Box<dyn Fn(&str, Duration) + Send + Sync>;

/// The installed hook, if any. `OnceLock` makes installation race-free;
/// the separate flag keeps the disabled check branch-predictable.
static HOOK: OnceLock<Hook> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Install the process-wide profiling hook. Only the first installation
/// wins (returns `false` if a hook was already present); hooks cannot be
/// removed, matching the usual profiler lifecycle.
pub fn install(hook: impl Fn(&str, Duration) + Send + Sync + 'static) -> bool {
    let fresh = HOOK.set(Box::new(hook)).is_ok();
    if fresh {
        ENABLED.store(true, Ordering::Release);
    }
    fresh
}

/// Is a hook installed?
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Report a completed span directly to the hook (no-op when disabled).
pub fn report(name: &str, wall: Duration) {
    if enabled() {
        if let Some(hook) = HOOK.get() {
            hook(name, wall);
        }
    }
}

/// A timed scope: reports its wall-clock to the hook on drop. When no hook
/// is installed, construction skips reading the clock entirely.
#[must_use = "the scope reports on drop; binding it to `_` drops immediately"]
pub struct Scope {
    name: &'static str,
    start: Option<Instant>,
}

/// Open a timed scope named `name`.
pub fn scope(name: &'static str) -> Scope {
    Scope {
        name,
        start: if enabled() {
            Some(Instant::now())
        } else {
            None
        },
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            report(self.name, start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    // `install` is process-global and tests share one process, so all hook
    // behaviour lives in a single test.
    #[test]
    fn scopes_report_once_installed() {
        {
            let _quiet = scope("before-install");
        }
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = Arc::clone(&hits);
        let first = install(move |_name, _wall| {
            hits2.fetch_add(1, Ordering::SeqCst);
        });
        {
            let _s = scope("unit");
        }
        report("direct", Duration::from_millis(1));
        if first {
            assert!(enabled());
            assert_eq!(hits.load(Ordering::SeqCst), 2);
        }
        // Second installation is refused.
        assert!(!install(|_, _| {}));
    }
}
