//! Structured trace events: spans and instants on a monotonic timeline.
//!
//! The CLI's original `--trace` printed ad-hoc lines to stderr, which
//! interleaved badly with `--metrics` output and could not be loaded into
//! any timeline viewer. This module replaces those lines with a proper
//! event model: a [`TraceBuffer`] collects [`TraceEvent`]s — *complete
//! spans* (name + start + duration) and *instants* (name + timestamp) —
//! stamped with microseconds since the buffer's creation, and encodes
//! them in two formats:
//!
//! * [`TraceFormat::Jsonl`] — one JSON object per line, greppable and
//!   streamable;
//! * [`TraceFormat::Chrome`] — the Chrome `trace_event` JSON object form
//!   (`{"traceEvents": [...]}`), loadable in `about://tracing` and
//!   [Perfetto](https://ui.perfetto.dev). Spans use phase `"X"`
//!   (complete events), instants phase `"i"`; timestamps and durations
//!   are microseconds as the format requires.
//!
//! Thread ids (`tid`) are logical lanes, not OS threads: the CLI assigns
//! one lane per batch group so per-user closures render as parallel
//! tracks even when they ran on a work-stealing pool.

use std::time::{Duration, Instant};

use crate::json::Json;

/// The wire encoding of a trace dump.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceFormat {
    /// One JSON object per line.
    #[default]
    Jsonl,
    /// Chrome `trace_event` object form, Perfetto-loadable.
    Chrome,
}

impl TraceFormat {
    /// Parse a `--trace-format=` value.
    pub fn parse(s: &str) -> Option<TraceFormat> {
        match s {
            "jsonl" => Some(TraceFormat::Jsonl),
            "chrome" => Some(TraceFormat::Chrome),
            _ => None,
        }
    }

    /// The flag spelling (`jsonl` / `chrome`).
    pub fn name(&self) -> &'static str {
        match self {
            TraceFormat::Jsonl => "jsonl",
            TraceFormat::Chrome => "chrome",
        }
    }
}

/// One event on the timeline. `dur_us: Some(_)` makes it a complete span,
/// `None` an instant.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Event name (e.g. `closure`, `cache.hit`).
    pub name: String,
    /// Category, used by viewers for filtering (e.g. `phase`, `cache`).
    pub cat: &'static str,
    /// Logical lane: 0 for the driver, one lane per batch group.
    pub tid: u64,
    /// Microseconds since the buffer's origin.
    pub ts_us: u64,
    /// Span duration in microseconds; `None` for instants.
    pub dur_us: Option<u64>,
    /// Structured payload rendered under `"args"`.
    pub args: Vec<(String, Json)>,
}

impl TraceEvent {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".to_owned(), Json::str(&self.name)),
            ("cat".to_owned(), Json::str(self.cat)),
            (
                "ph".to_owned(),
                Json::str(if self.dur_us.is_some() { "X" } else { "i" }),
            ),
            ("ts".to_owned(), Json::count(self.ts_us)),
        ];
        if let Some(dur) = self.dur_us {
            fields.push(("dur".to_owned(), Json::count(dur)));
        } else {
            // Instant scope: thread-scoped, the narrowest marker.
            fields.push(("s".to_owned(), Json::str("t")));
        }
        fields.push(("pid".to_owned(), Json::count(1)));
        fields.push(("tid".to_owned(), Json::count(self.tid)));
        if !self.args.is_empty() {
            fields.push(("args".to_owned(), Json::Obj(self.args.clone())));
        }
        Json::Obj(fields)
    }
}

/// An append-only collection of trace events with a monotonic origin.
#[derive(Clone, Debug)]
pub struct TraceBuffer {
    origin: Instant,
    events: Vec<TraceEvent>,
}

impl Default for TraceBuffer {
    fn default() -> TraceBuffer {
        TraceBuffer::new()
    }
}

impl TraceBuffer {
    /// An empty buffer whose clock starts now.
    pub fn new() -> TraceBuffer {
        TraceBuffer {
            origin: Instant::now(),
            events: Vec::new(),
        }
    }

    /// Microseconds elapsed since the buffer was created. Monotonic.
    pub fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Record a complete span starting at `ts_us` and lasting `dur`.
    pub fn span(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        tid: u64,
        ts_us: u64,
        dur: Duration,
        args: Vec<(String, Json)>,
    ) {
        self.events.push(TraceEvent {
            name: name.into(),
            cat,
            tid,
            ts_us,
            dur_us: Some(dur.as_micros() as u64),
            args,
        });
    }

    /// Record an instant marker at `ts_us`.
    pub fn instant(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        tid: u64,
        ts_us: u64,
        args: Vec<(String, Json)>,
    ) {
        self.events.push(TraceEvent {
            name: name.into(),
            cat,
            tid,
            ts_us,
            dur_us: None,
            args,
        });
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events, in append order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Encode in the requested format.
    pub fn encode(&self, format: TraceFormat) -> String {
        match format {
            TraceFormat::Jsonl => self.to_jsonl(),
            TraceFormat::Chrome => self.to_chrome(),
        }
    }

    /// One compact JSON object per line, one line per event.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json().to_string());
            out.push('\n');
        }
        out
    }

    /// The Chrome `trace_event` object form: a single JSON document with
    /// a `traceEvents` array, loadable in Perfetto / `about://tracing`.
    pub fn to_chrome(&self) -> String {
        let events = Json::Arr(self.events.iter().map(TraceEvent::to_json).collect());
        Json::Obj(vec![
            ("traceEvents".to_owned(), events),
            ("displayTimeUnit".to_owned(), Json::str("ms")),
        ])
        .pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceBuffer {
        let mut tb = TraceBuffer::new();
        tb.span(
            "closure",
            "phase",
            1,
            10,
            Duration::from_micros(250),
            vec![("terms".to_owned(), Json::count(42))],
        );
        tb.instant("cache.hit", "cache", 1, 260, vec![]);
        tb.span("check", "phase", 2, 300, Duration::from_micros(5), vec![]);
        tb
    }

    #[test]
    fn chrome_output_is_valid_trace_event_json() {
        let doc = Json::parse(&sample().to_chrome()).expect("chrome trace parses");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert_eq!(events.len(), 3);
        // Spans are complete events with ts+dur in microseconds.
        let span = &events[0];
        assert_eq!(span.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(span.get("ts").and_then(Json::as_u64), Some(10));
        assert_eq!(span.get("dur").and_then(Json::as_u64), Some(250));
        assert_eq!(span.get("pid").and_then(Json::as_u64), Some(1));
        assert_eq!(span.get("tid").and_then(Json::as_u64), Some(1));
        assert_eq!(
            span.get("args")
                .and_then(|a| a.get("terms"))
                .and_then(Json::as_u64),
            Some(42)
        );
        // Instants carry phase "i" and a scope.
        let inst = &events[1];
        assert_eq!(inst.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(inst.get("s").and_then(Json::as_str), Some("t"));
        assert!(inst.get("dur").is_none());
    }

    #[test]
    fn jsonl_output_is_one_valid_object_per_line() {
        let text = sample().to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            let v = Json::parse(line).expect("each line parses alone");
            assert!(v.get("name").is_some() && v.get("ts").is_some());
        }
    }

    #[test]
    fn now_us_is_monotonic() {
        let tb = TraceBuffer::new();
        let a = tb.now_us();
        let b = tb.now_us();
        assert!(b >= a);
    }

    #[test]
    fn format_parses_flag_spellings() {
        assert_eq!(TraceFormat::parse("jsonl"), Some(TraceFormat::Jsonl));
        assert_eq!(TraceFormat::parse("chrome"), Some(TraceFormat::Chrome));
        assert_eq!(TraceFormat::parse("xml"), None);
        assert_eq!(TraceFormat::Chrome.name(), "chrome");
    }

    #[test]
    fn empty_buffer_encodes_cleanly() {
        let tb = TraceBuffer::new();
        assert!(tb.is_empty());
        assert_eq!(tb.to_jsonl(), "");
        let doc = Json::parse(&tb.to_chrome()).unwrap();
        assert_eq!(
            doc.get("traceEvents")
                .and_then(Json::as_arr)
                .map(<[_]>::len),
            Some(0)
        );
    }
}
