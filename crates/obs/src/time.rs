//! Wall-clock phase timing.

use std::time::{Duration, Instant};

/// A started wall-clock timer.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Time since start, in fractional milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e3
    }

    /// Restart and return the lap time.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let lap = now - self.start;
        self.start = now;
        lap
    }
}

impl Default for Stopwatch {
    fn default() -> Stopwatch {
        Stopwatch::start()
    }
}

/// An ordered record of named phase durations. Repeated names accumulate,
/// so per-requirement phases (one closure per user) sum naturally.
#[derive(Clone, Debug, Default)]
pub struct Phases {
    entries: Vec<(String, Duration)>,
}

impl Phases {
    /// An empty record.
    pub fn new() -> Phases {
        Phases::default()
    }

    /// Time a closure under `name`.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let sw = Stopwatch::start();
        let out = f();
        self.add(name, sw.elapsed());
        out
    }

    /// Record (or accumulate onto) a named duration.
    pub fn add(&mut self, name: &str, d: Duration) {
        if let Some((_, total)) = self.entries.iter_mut().find(|(n, _)| n == name) {
            *total += d;
        } else {
            self.entries.push((name.to_owned(), d));
        }
    }

    /// The recorded duration of one phase, if present.
    pub fn get(&self, name: &str) -> Option<Duration> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| *d)
    }

    /// Iterate phases in recording order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Duration)> {
        self.entries.iter().map(|(n, d)| (n.as_str(), *d))
    }

    /// Total across all phases.
    pub fn total(&self) -> Duration {
        self.entries.iter().map(|(_, d)| *d).sum()
    }

    /// Is anything recorded?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Report every phase into a sink as a span.
    pub fn record_to(&self, sink: &mut dyn crate::sink::MetricsSink) {
        for (name, d) in self.iter() {
            sink.span(name, d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_and_keep_order() {
        let mut p = Phases::new();
        p.add("parse", Duration::from_millis(2));
        p.add("closure", Duration::from_millis(5));
        p.add("parse", Duration::from_millis(3));
        let names: Vec<&str> = p.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["parse", "closure"]);
        assert_eq!(p.get("parse"), Some(Duration::from_millis(5)));
        assert_eq!(p.total(), Duration::from_millis(10));
    }

    #[test]
    fn time_returns_the_closure_value() {
        let mut p = Phases::new();
        let v = p.time("work", || 41 + 1);
        assert_eq!(v, 42);
        assert!(p.get("work").is_some());
    }

    #[test]
    fn stopwatch_laps() {
        let mut sw = Stopwatch::start();
        let a = sw.lap();
        let b = sw.elapsed();
        assert!(a >= Duration::ZERO && b >= Duration::ZERO);
    }
}
