//! A dependency-free JSON value type, writer and parser.
//!
//! The build environment is offline, so serde is unavailable; this module
//! implements the small subset the metrics exporter needs. Numbers are
//! stored as `f64` (counters fit losslessly up to 2⁵³, far beyond any
//! realistic metric), object keys keep insertion order, and the writer
//! emits output the parser round-trips exactly.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build a string value.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_owned())
    }

    /// Build a number from anything convertible to `f64`.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Build a number from a `u64` counter (lossless below 2⁵³).
    pub fn count(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Look up a key if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialise with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => {
                use fmt::Write;
                let _ = write!(out, "{other}");
            }
        }
    }

    /// Parse a JSON document (the subset this module emits, which is the
    /// standard grammar minus `\uXXXX` surrogate pairs beyond the BMP).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    /// Compact (single-line) serialisation.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write_num(f, *n),
            Json::Str(s) => {
                let mut buf = String::new();
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::new();
                    write_escaped(&mut buf, k);
                    write!(f, "{buf}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the conventional fallback.
        return f.write_str("null");
    }
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        write!(f, "{}", n as i64)
    } else {
        write!(f, "{n}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'n') => expect(bytes, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        match code {
                            // High surrogate: JSON encodes astral-plane
                            // scalars as a `\uD8xx\uDCxx` pair (RFC 8259
                            // §7); decode both halves into one char.
                            0xD800..=0xDBFF => {
                                if bytes.get(*pos + 1..*pos + 3) != Some(br"\u") {
                                    return Err(format!(
                                        "lone high surrogate \\u{code:04X} at byte {pos}: \
                                         expected a low-surrogate \\u escape to follow",
                                        pos = *pos
                                    ));
                                }
                                let low = parse_hex4(bytes, *pos + 3)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(format!(
                                        "high surrogate \\u{code:04X} followed by \
                                         \\u{low:04X}, which is not a low surrogate"
                                    ));
                                }
                                let scalar = 0x1_0000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                out.push(
                                    char::from_u32(scalar)
                                        .expect("surrogate pairs always decode to a valid scalar"),
                                );
                                *pos += 6;
                            }
                            0xDC00..=0xDFFF => {
                                return Err(format!(
                                    "lone low surrogate \\u{code:04X} at byte {pos}",
                                    pos = *pos
                                ));
                            }
                            _ => out.push(
                                char::from_u32(code)
                                    .expect("non-surrogate BMP code points are scalars"),
                            ),
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance over one UTF-8 scalar; input is a &str, so the
                // byte stream is valid UTF-8 by construction.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Reads the four hex digits of a `\uXXXX` escape starting at `at`.
fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let hex = bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
    let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
    u32::from_str_radix(hex, 16).map_err(|e| e.to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        Json::Obj(vec![
            ("name".to_owned(), Json::str("closure")),
            ("rounds".to_owned(), Json::count(12)),
            ("ratio".to_owned(), Json::Num(0.5)),
            ("ok".to_owned(), Json::Bool(true)),
            ("nothing".to_owned(), Json::Null),
            (
                "kinds".to_owned(),
                Json::Arr(vec![Json::str("ta"), Json::str("pi*"), Json::count(3)]),
            ),
        ])
    }

    #[test]
    fn compact_round_trips() {
        let v = sample();
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn pretty_round_trips() {
        let v = sample();
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::count(42).to_string(), "42");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::str("a\"b\\c\nd\te\u{1}");
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn surrogate_pairs_decode_beyond_the_bmp() {
        // U+1D11E MUSICAL SYMBOL G CLEF = 𝄞, U+10348 = 𐍈.
        assert_eq!(
            Json::parse(r#""𝄞 and 𐍈""#).unwrap(),
            Json::str("\u{1D11E} and \u{10348}")
        );
        // BMP escapes still decode directly.
        assert_eq!(Json::parse(r#""é☃""#).unwrap(), Json::str("é☃"));
    }

    #[test]
    fn non_bmp_strings_round_trip() {
        // The writer emits astral characters as raw UTF-8; the parser must
        // accept both that form and the escaped surrogate-pair form.
        let v = Json::str("clef \u{1D11E}, emoji \u{1F512}, tail");
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn lone_surrogates_are_rejected_with_a_clear_error() {
        let high = Json::parse(r#""\uD834""#).unwrap_err();
        assert!(
            high.contains("lone high surrogate \\uD834"),
            "unexpected error: {high}"
        );
        let low = Json::parse(r#""\uDD1E""#).unwrap_err();
        assert!(
            low.contains("lone low surrogate \\uDD1E"),
            "unexpected error: {low}"
        );
        // High surrogate followed by a non-low escape names both halves.
        let pair = Json::parse("\"\\uD834\\u0041\"").unwrap_err();
        assert!(
            pair.contains("\\uD834") && pair.contains("\\u0041"),
            "unexpected error: {pair}"
        );
        // High surrogate followed by a plain character is also lone.
        assert!(Json::parse(r#""\uD834x""#).is_err());
    }

    #[test]
    fn get_and_accessors() {
        let v = sample();
        assert_eq!(v.get("rounds").and_then(Json::as_u64), Some(12));
        assert_eq!(v.get("name").and_then(Json::as_str), Some("closure"));
        assert_eq!(
            v.get("kinds").and_then(Json::as_arr).map(<[_]>::len),
            Some(3)
        );
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Num(2.5).as_u64(), None);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1,]").is_err());
    }
}
