//! The materialised metrics report: summary table and JSON export.

use std::time::Duration;

use crate::json::Json;

/// Everything a [`crate::sink::Recorder`] collected: counters, gauges and
/// spans, each in first-report order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsReport {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    spans: Vec<(String, Duration)>,
}

impl MetricsReport {
    /// An empty report.
    pub fn new() -> MetricsReport {
        MetricsReport::default()
    }

    /// Set (or overwrite) a counter. Producers report running totals, so
    /// the last observation wins.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        set(&mut self.counters, name, value);
    }

    /// Set (or overwrite) a gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        set(&mut self.gauges, name, value);
    }

    /// Add a span observation; repeated names accumulate.
    pub fn add_span(&mut self, name: &str, wall: Duration) {
        if let Some((_, total)) = self.spans.iter_mut().find(|(n, _)| n == name) {
            *total += wall;
        } else {
            self.spans.push((name.to_owned(), wall));
        }
    }

    /// A counter's value, if reported.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// A gauge's value, if reported.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// A span's accumulated wall-clock, if reported.
    pub fn span(&self, name: &str) -> Option<Duration> {
        self.spans.iter().find(|(n, _)| n == name).map(|(_, d)| *d)
    }

    /// Iterate counters in first-report order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Iterate gauges in first-report order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Iterate spans in first-report order.
    pub fn spans(&self) -> impl Iterator<Item = (&str, Duration)> {
        self.spans.iter().map(|(n, d)| (n.as_str(), *d))
    }

    /// True when nothing at all was reported.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.spans.is_empty()
    }

    /// Fold another report into this one: counters take the other's value,
    /// gauges take the other's value, spans accumulate.
    pub fn merge(&mut self, other: &MetricsReport) {
        for (n, v) in other.counters() {
            self.set_counter(n, v);
        }
        for (n, v) in other.gauges() {
            self.set_gauge(n, v);
        }
        for (n, d) in other.spans() {
            self.add_span(n, d);
        }
    }

    /// Render the human-readable summary table.
    ///
    /// Three sections (spans, counters, gauges), aligned on the widest
    /// name, spans in milliseconds with a percent-of-total column.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("(no metrics recorded)\n");
            return out;
        }
        let width = self
            .spans
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.counters.iter().map(|(n, _)| n.len()))
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0)
            .max("total".len());

        if !self.spans.is_empty() {
            out.push_str("-- timings ");
            out.push_str(&"-".repeat(width + 14usize.saturating_sub(11)));
            out.push('\n');
            let total = self.spans.iter().map(|(_, d)| *d).sum::<Duration>();
            let total_ms = total.as_secs_f64() * 1e3;
            for (name, d) in &self.spans {
                let ms = d.as_secs_f64() * 1e3;
                let pct = if total_ms > 0.0 {
                    ms / total_ms * 100.0
                } else {
                    0.0
                };
                out.push_str(&format!("{name:<width$}  {ms:>10.3} ms  {pct:>5.1}%\n"));
            }
            out.push_str(&format!("{:<width$}  {total_ms:>10.3} ms\n", "total"));
        }
        if !self.counters.is_empty() {
            out.push_str("-- counters ");
            out.push_str(&"-".repeat(width + 14usize.saturating_sub(12)));
            out.push('\n');
            for (name, v) in &self.counters {
                out.push_str(&format!("{name:<width$}  {v:>10}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("-- gauges ");
            out.push_str(&"-".repeat(width + 14usize.saturating_sub(10)));
            out.push('\n');
            for (name, v) in &self.gauges {
                out.push_str(&format!("{name:<width$}  {v:>10.3}\n"));
            }
        }
        out
    }

    /// Export as a JSON value: `{"spans": {name: ms}, "counters": {...},
    /// "gauges": {...}}`, preserving report order.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "spans_ms".to_owned(),
                Json::Obj(
                    self.spans
                        .iter()
                        .map(|(n, d)| (n.clone(), Json::Num(d.as_secs_f64() * 1e3)))
                        .collect(),
                ),
            ),
            (
                "counters".to_owned(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::count(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_owned(),
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuild a report from the [`MetricsReport::to_json`] shape.
    pub fn from_json(value: &Json) -> Result<MetricsReport, String> {
        let mut report = MetricsReport::new();
        if let Some(Json::Obj(fields)) = value.get("spans_ms") {
            for (name, v) in fields {
                let ms = v
                    .as_f64()
                    .ok_or_else(|| format!("span `{name}`: not a number"))?;
                report.add_span(name, Duration::from_secs_f64((ms / 1e3).max(0.0)));
            }
        }
        if let Some(Json::Obj(fields)) = value.get("counters") {
            for (name, v) in fields {
                let n = v
                    .as_u64()
                    .ok_or_else(|| format!("counter `{name}`: not a u64"))?;
                report.set_counter(name, n);
            }
        }
        if let Some(Json::Obj(fields)) = value.get("gauges") {
            for (name, v) in fields {
                let x = v
                    .as_f64()
                    .ok_or_else(|| format!("gauge `{name}`: not a number"))?;
                report.set_gauge(name, x);
            }
        }
        Ok(report)
    }
}

fn set<T: Copy>(entries: &mut Vec<(String, T)>, name: &str, value: T) {
    if let Some((_, v)) = entries.iter_mut().find(|(n, _)| n == name) {
        *v = value;
    } else {
        entries.push((name.to_owned(), value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsReport {
        let mut r = MetricsReport::new();
        r.add_span("parse", Duration::from_micros(1500));
        r.add_span("closure", Duration::from_micros(8500));
        r.set_counter("closure.terms", 120);
        r.set_counter("closure.rounds", 4);
        r.set_gauge("closure.dedup_hit_rate", 0.75);
        r
    }

    #[test]
    fn table_has_all_sections() {
        let t = sample().render_table();
        assert!(t.contains("timings"), "{t}");
        assert!(t.contains("counters"), "{t}");
        assert!(t.contains("gauges"), "{t}");
        assert!(t.contains("closure.terms"), "{t}");
        assert!(t.contains("total"), "{t}");
    }

    #[test]
    fn empty_table_says_so() {
        assert!(MetricsReport::new().render_table().contains("no metrics"));
    }

    #[test]
    fn json_round_trip_preserves_counters_exactly() {
        let r = sample();
        let text = r.to_json().pretty();
        let back = MetricsReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.counter("closure.terms"), Some(120));
        assert_eq!(back.counter("closure.rounds"), Some(4));
        assert_eq!(back.gauge("closure.dedup_hit_rate"), Some(0.75));
        // Spans round-trip through fractional ms; accept microsecond slop.
        let orig = r.span("closure").unwrap();
        let got = back.span("closure").unwrap();
        let diff = orig.max(got) - orig.min(got);
        assert!(diff < Duration::from_micros(2), "{orig:?} vs {got:?}");
    }

    #[test]
    fn merge_overwrites_counters_and_sums_spans() {
        let mut a = sample();
        let mut b = MetricsReport::new();
        b.set_counter("closure.terms", 200);
        b.add_span("closure", Duration::from_micros(500));
        a.merge(&b);
        assert_eq!(a.counter("closure.terms"), Some(200));
        assert_eq!(a.span("closure"), Some(Duration::from_micros(9000)));
    }
}
